//! Encoding and decoding of the (regions, patterns) model pair.

use crate::bytes::Buf;
use crate::codec::{fnv1a, get_count, get_f64, get_varint, put_f64, put_varint};
use crate::format::{MAGIC, MAX_PATTERNS, MAX_PREMISE, MAX_REGIONS, VERSION};
use crate::DecodeError;
use hpm_geo::{BoundingBox, Point};
use hpm_patterns::{FrequentRegion, RegionId, RegionSet, TrajectoryPattern};
use hpm_trajectory::TimeOffset;
use std::path::Path;

/// A decoded model: everything needed to assemble a
/// `HybridPredictor` via `HybridPredictor::from_parts`.
#[derive(Debug, Clone)]
pub struct StoredModel {
    /// The frequent regions.
    pub regions: RegionSet,
    /// The mined trajectory patterns.
    pub patterns: Vec<TrajectoryPattern>,
}

/// Encodes a model into the version-1 binary format.
pub fn encode_model(regions: &RegionSet, patterns: &[TrajectoryPattern]) -> Vec<u8> {
    let _span = hpm_obs::span!(crate::metrics::ENCODE_SPAN);
    // Rough pre-size: fixed 48 B per region, ~12 B per pattern.
    let mut buf = Vec::with_capacity(16 + regions.len() * 56 + patterns.len() * 16);
    buf.extend_from_slice(MAGIC);
    put_varint(&mut buf, u64::from(VERSION));

    put_varint(&mut buf, u64::from(regions.period()));
    put_varint(&mut buf, regions.len() as u64);
    for r in regions.all() {
        put_varint(&mut buf, u64::from(r.offset));
        put_varint(&mut buf, u64::from(r.local_index));
        put_varint(&mut buf, u64::from(r.support));
        put_f64(&mut buf, r.centroid.x);
        put_f64(&mut buf, r.centroid.y);
        put_f64(&mut buf, r.bbox.min.x);
        put_f64(&mut buf, r.bbox.min.y);
        put_f64(&mut buf, r.bbox.max.x);
        put_f64(&mut buf, r.bbox.max.y);
    }

    put_varint(&mut buf, patterns.len() as u64);
    for p in patterns {
        put_varint(&mut buf, p.premise.len() as u64);
        let mut prev = 0u64;
        for (i, id) in p.premise.iter().enumerate() {
            let raw = u64::from(id.0);
            if i == 0 {
                put_varint(&mut buf, raw);
            } else {
                put_varint(&mut buf, raw - prev);
            }
            prev = raw;
        }
        put_varint(&mut buf, u64::from(p.consequence.0));
        put_f64(&mut buf, p.confidence);
        put_varint(&mut buf, u64::from(p.support));
    }

    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    hpm_obs::counter!(crate::metrics::BYTES_WRITTEN).add(buf.len() as u64);
    buf
}

/// Decodes a model blob, verifying magic, version, checksum, and all
/// structural invariants (each pattern is validated against the
/// decoded region set).
pub fn decode_model(bytes: &[u8]) -> Result<StoredModel, DecodeError> {
    let _span = hpm_obs::span!(crate::metrics::DECODE_SPAN);
    hpm_obs::counter!(crate::metrics::BYTES_READ).add(bytes.len() as u64);
    let result = decode_model_inner(bytes);
    if result.is_err() {
        hpm_obs::counter!(crate::metrics::DECODE_ERRORS).add(1);
    }
    result
}

fn decode_model_inner(bytes: &[u8]) -> Result<StoredModel, DecodeError> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(DecodeError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(DecodeError::ChecksumMismatch { stored, computed });
    }
    let mut buf = payload;
    if buf[..MAGIC.len()] != MAGIC[..] {
        return Err(DecodeError::BadMagic);
    }
    buf.advance(MAGIC.len());
    let version = get_varint(&mut buf)? as u32;
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }

    let period = get_varint(&mut buf)? as u32;
    if period == 0 {
        return Err(DecodeError::Invalid("period must be positive".into()));
    }
    let region_count = get_count(&mut buf, MAX_REGIONS)?;
    let mut regions = Vec::with_capacity(region_count);
    for id in 0..region_count {
        let offset = get_varint(&mut buf)? as TimeOffset;
        let local_index = get_varint(&mut buf)? as u32;
        let support = get_varint(&mut buf)? as u32;
        let centroid = Point::new(get_f64(&mut buf)?, get_f64(&mut buf)?);
        let min = Point::new(get_f64(&mut buf)?, get_f64(&mut buf)?);
        let max = Point::new(get_f64(&mut buf)?, get_f64(&mut buf)?);
        if offset >= period {
            return Err(DecodeError::Invalid(format!(
                "region {id}: offset {offset} >= period {period}"
            )));
        }
        if !(centroid.is_finite() && min.is_finite() && max.is_finite()) {
            return Err(DecodeError::Invalid(format!(
                "region {id}: non-finite geometry"
            )));
        }
        if min.x > max.x || min.y > max.y {
            return Err(DecodeError::Invalid(format!(
                "region {id}: inverted bounding box"
            )));
        }
        regions.push(FrequentRegion {
            id: RegionId(id as u32),
            offset,
            local_index,
            centroid,
            bbox: BoundingBox { min, max },
            support,
        });
    }
    // RegionSet::new enforces the id/offset ordering invariants; map
    // its panic into a decode error via a pre-check.
    for w in regions.windows(2) {
        if w[1].offset < w[0].offset {
            return Err(DecodeError::Invalid(
                "regions not sorted by time offset".into(),
            ));
        }
    }
    let regions = RegionSet::new(regions, period);

    let pattern_count = get_count(&mut buf, MAX_PATTERNS)?;
    let mut patterns = Vec::with_capacity(pattern_count.min(1 << 20));
    for i in 0..pattern_count {
        let premise_len = get_count(&mut buf, MAX_PREMISE)?;
        let mut premise = Vec::with_capacity(premise_len);
        let mut prev = 0u64;
        for j in 0..premise_len {
            let v = get_varint(&mut buf)?;
            let id = if j == 0 { v } else { prev + v };
            if id > u64::from(u32::MAX) {
                return Err(DecodeError::Invalid(format!(
                    "pattern {i}: premise id overflows u32"
                )));
            }
            premise.push(RegionId(id as u32));
            prev = id;
        }
        let consequence = get_varint(&mut buf)?;
        if consequence > u64::from(u32::MAX) {
            return Err(DecodeError::Invalid(format!(
                "pattern {i}: consequence id overflows u32"
            )));
        }
        let confidence = get_f64(&mut buf)?;
        let support = get_varint(&mut buf)? as u32;
        let pattern = TrajectoryPattern {
            premise,
            consequence: RegionId(consequence as u32),
            confidence,
            support,
        };
        pattern
            .validate(&regions)
            .map_err(|e| DecodeError::Invalid(format!("pattern {i}: {e}")))?;
        patterns.push(pattern);
    }

    if buf.has_remaining() {
        return Err(DecodeError::TrailingBytes(buf.remaining()));
    }
    Ok(StoredModel { regions, patterns })
}

/// Encodes and writes a model to a file.
pub fn save_model(
    path: impl AsRef<Path>,
    regions: &RegionSet,
    patterns: &[TrajectoryPattern],
) -> std::io::Result<()> {
    let _span = hpm_obs::span!(crate::metrics::SAVE_SPAN);
    std::fs::write(path, encode_model(regions, patterns))
}

/// Reads and decodes a model file.
pub fn load_model(path: impl AsRef<Path>) -> std::io::Result<Result<StoredModel, DecodeError>> {
    let _span = hpm_obs::span!(crate::metrics::LOAD_SPAN);
    Ok(decode_model(&std::fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_geo::Point;

    fn sample() -> (RegionSet, Vec<TrajectoryPattern>) {
        let mk = |id: u32, offset: TimeOffset, j: u32, cx: f64| {
            let c = Point::new(cx, cx * 0.5);
            FrequentRegion {
                id: RegionId(id),
                offset,
                local_index: j,
                centroid: c,
                bbox: BoundingBox {
                    min: c - Point::new(2.0, 2.0),
                    max: c + Point::new(2.0, 2.0),
                },
                support: 10 + id,
            }
        };
        let regions = RegionSet::new(
            vec![
                mk(0, 0, 0, 0.0),
                mk(1, 1, 0, 10.0),
                mk(2, 1, 1, 20.0),
                mk(3, 2, 0, 30.0),
            ],
            3,
        );
        let patterns = vec![
            TrajectoryPattern {
                premise: vec![RegionId(0)],
                consequence: RegionId(1),
                confidence: 0.9,
                support: 9,
            },
            TrajectoryPattern {
                premise: vec![RegionId(0), RegionId(2)],
                consequence: RegionId(3),
                confidence: 0.45,
                support: 5,
            },
        ];
        (regions, patterns)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (regions, patterns) = sample();
        let blob = encode_model(&regions, &patterns);
        let model = decode_model(&blob).unwrap();
        assert_eq!(model.regions.period(), 3);
        assert_eq!(model.regions.len(), regions.len());
        for (a, b) in regions.all().iter().zip(model.regions.all()) {
            assert_eq!(a, b);
        }
        assert_eq!(model.patterns, patterns);
    }

    #[test]
    fn empty_model_roundtrips() {
        let regions = RegionSet::new(Vec::new(), 5);
        let blob = encode_model(&regions, &[]);
        let model = decode_model(&blob).unwrap();
        assert_eq!(model.regions.len(), 0);
        assert_eq!(model.regions.period(), 5);
        assert!(model.patterns.is_empty());
    }

    #[test]
    fn bitflip_detected_by_checksum() {
        let (regions, patterns) = sample();
        let blob = encode_model(&regions, &patterns);
        for i in (0..blob.len()).step_by(7) {
            let mut bad = blob.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_model(&bad).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_detected() {
        let (regions, patterns) = sample();
        let blob = encode_model(&regions, &patterns);
        for cut in [0, 3, blob.len() / 2, blob.len() - 1] {
            assert!(decode_model(&blob[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let (regions, patterns) = sample();
        let mut blob = encode_model(&regions, &patterns);
        blob[0] = b'X';
        // Fix up the checksum so the magic check itself is exercised.
        let n = blob.len() - 8;
        let checksum = crate::codec::fnv1a(&blob[..n]);
        blob[n..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(decode_model(&blob), Err(DecodeError::BadMagic)));
    }

    #[test]
    fn wrong_version_rejected() {
        let (regions, patterns) = sample();
        let mut blob = encode_model(&regions, &patterns);
        blob[8] = 2; // version varint
        let n = blob.len() - 8;
        let checksum = crate::codec::fnv1a(&blob[..n]);
        blob[n..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            decode_model(&blob),
            Err(DecodeError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (regions, patterns) = sample();
        let mut blob = encode_model(&regions, &patterns);
        let trailer_at = blob.len() - 8;
        blob.insert(trailer_at, 0); // junk byte inside the payload
        let n = blob.len() - 8;
        let checksum = crate::codec::fnv1a(&blob[..n]);
        blob[n..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            decode_model(&blob),
            Err(DecodeError::TrailingBytes(1))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let (regions, patterns) = sample();
        let dir = std::env::temp_dir().join("hpm_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.hpm");
        save_model(&path, &regions, &patterns).unwrap();
        let model = load_model(&path).unwrap().unwrap();
        assert_eq!(model.patterns, patterns);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn delta_coding_is_compact() {
        // Premise ids 100, 101, 102: the two deltas are single bytes.
        let mk = |id: u32, offset: TimeOffset| FrequentRegion {
            id: RegionId(id),
            offset,
            local_index: 0,
            centroid: Point::ORIGIN,
            bbox: BoundingBox::from_point(Point::ORIGIN),
            support: 5,
        };
        let regions = RegionSet::new((0..200u32).map(|i| mk(i, i)).collect(), 200);
        let wide = TrajectoryPattern {
            premise: vec![RegionId(100), RegionId(101), RegionId(102)],
            consequence: RegionId(103),
            confidence: 0.5,
            support: 5,
        };
        let blob = encode_model(&regions, std::slice::from_ref(&wide));
        let model = decode_model(&blob).unwrap();
        assert_eq!(model.patterns[0], wide);
    }
}
