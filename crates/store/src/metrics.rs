//! Metric names this crate emits, and their registration.
//!
//! Names follow the workspace `crate.module.op` convention; the full
//! catalogue lives in `docs/OBSERVABILITY.md`.

/// Latency span around in-memory model encoding.
pub const ENCODE_SPAN: &str = "store.model.encode";
/// Latency span around in-memory model decoding (checksum included).
pub const DECODE_SPAN: &str = "store.model.decode";
/// Latency span around encode + file write.
pub const SAVE_SPAN: &str = "store.model.save";
/// Latency span around file read + decode.
pub const LOAD_SPAN: &str = "store.model.load";

/// Model bytes produced by encoding, summed over calls.
pub const BYTES_WRITTEN: &str = "store.model.bytes_written";
/// Model bytes consumed by decoding (valid or not), summed over calls.
pub const BYTES_READ: &str = "store.model.bytes_read";
/// Decode attempts rejected (bad magic, version, checksum, bounds).
pub const DECODE_ERRORS: &str = "store.model.decode_errors";

/// Latency span around one WAL record append (group-commit write
/// included when the batch fills).
pub const WAL_APPEND_SPAN: &str = "store.wal.append";
/// Latency span around one WAL fsync (`FsyncPolicy::Always` only).
pub const WAL_FSYNC_SPAN: &str = "store.wal.fsync";
/// WAL records appended.
pub const WAL_RECORDS: &str = "store.wal.records";
/// WAL bytes physically written (headers excluded).
pub const WAL_BYTES: &str = "store.wal.bytes";

/// Registers every metric above so snapshots cover them even before
/// the first model round-trip (zero-valued metrics are still listed).
pub fn register() {
    hpm_obs::registry().counter(BYTES_WRITTEN);
    hpm_obs::registry().counter(BYTES_READ);
    hpm_obs::registry().counter(DECODE_ERRORS);
    hpm_obs::registry().counter(WAL_RECORDS);
    hpm_obs::registry().counter(WAL_BYTES);
    for span in [
        ENCODE_SPAN,
        DECODE_SPAN,
        SAVE_SPAN,
        LOAD_SPAN,
        WAL_APPEND_SPAN,
        WAL_FSYNC_SPAN,
    ] {
        hpm_obs::registry().histogram(span, hpm_obs::Unit::Nanos);
    }
}
