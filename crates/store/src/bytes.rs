//! Minimal in-tree byte-cursor traits (the slice of the `bytes` crate
//! the codec used, reimplemented std-only for the hermetic build).
//!
//! `BufMut` appends to a growable buffer; `Buf` is a consuming cursor
//! over a shrinking `&[u8]`. Reads past the end are programming errors
//! here — callers check `remaining()` first, as `codec` does — so the
//! impls panic like the originals rather than returning options.

/// An append-only byte sink.
pub(crate) trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends an `f64` as little-endian bits.
    fn put_f64_le(&mut self, v: f64);
    /// Appends a `u64` little-endian.
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// A fixed-capacity stack buffer for staging hot-path payloads (one
/// WAL frame per accepted report) without a heap allocation. Writes
/// past `N` panic, like the `Vec` impl would on OOM; callers size `N`
/// from a protocol limit.
pub(crate) struct StackBuf<const N: usize> {
    buf: [u8; N],
    len: usize,
}

impl<const N: usize> StackBuf<N> {
    pub(crate) fn new() -> Self {
        StackBuf {
            buf: [0; N],
            len: 0,
        }
    }

    /// The bytes written so far.
    pub(crate) fn filled(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

impl<const N: usize> BufMut for StackBuf<N> {
    fn put_u8(&mut self, v: u8) {
        self.buf[self.len] = v;
        self.len += 1;
    }

    fn put_f64_le(&mut self, v: f64) {
        self.buf[self.len..self.len + 8].copy_from_slice(&v.to_le_bytes());
        self.len += 8;
    }

    fn put_u64_le(&mut self, v: u64) {
        self.buf[self.len..self.len + 8].copy_from_slice(&v.to_le_bytes());
        self.len += 8;
    }
}

/// A consuming read cursor.
pub(crate) trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_f64_le(&mut self) -> f64 {
        let (head, tail) = self.split_at(8);
        *self = tail;
        f64::from_le_bytes(head.try_into().expect("8-byte split"))
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, tail) = self.split_at(8);
        *self = tail;
        u64::from_le_bytes(head.try_into().expect("8-byte split"))
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get_roundtrip() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_f64_le(-1.25);
        buf.put_u8(0x01);

        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.remaining(), 10);
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_f64_le(), -1.25);
        assert!(cursor.has_remaining());
        assert_eq!(cursor.get_u8(), 0x01);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        cursor.advance(2);
        assert_eq!(cursor.remaining(), 2);
        assert_eq!(cursor.get_u8(), 3);
    }

    #[test]
    #[should_panic]
    fn overread_panics() {
        let mut cursor: &[u8] = &[1u8];
        let _ = cursor.get_f64_le();
    }
}
