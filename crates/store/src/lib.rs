//! Binary persistence for trained Hybrid Prediction Models.
//!
//! Mining trajectory patterns over a long history is the expensive,
//! offline half of the paper's pipeline; a deployment wants to train
//! once and ship the resulting model — the frequent regions and the
//! trajectory patterns — to query servers. This crate provides a
//! compact, versioned, checksummed binary codec for exactly that pair.
//! (The TPT itself is *not* persisted: bulk-loading it from the
//! decoded patterns is fast and keeps the format independent of index
//! layout choices.)
//!
//! No serialization-format crate is available offline, so the format
//! is hand-rolled on top of small in-tree byte-cursor traits: a
//! magic/version header, LEB128 varints for integers, IEEE-754
//! little-endian doubles, and an FNV-1a trailer checksum. The format is documented in [`mod@format`] and
//! guarded by round-trip property tests.

//! # Example
//!
//! ```
//! use hpm_store::{decode_model, encode_model};
//! use hpm_patterns::{FrequentRegion, RegionId, RegionSet, TrajectoryPattern};
//! use hpm_geo::{BoundingBox, Point};
//!
//! let region = |id: u32, offset: u32| FrequentRegion {
//!     id: RegionId(id),
//!     offset,
//!     local_index: 0,
//!     centroid: Point::new(id as f64, 0.0),
//!     bbox: BoundingBox::from_point(Point::new(id as f64, 0.0)),
//!     support: 5,
//! };
//! let regions = RegionSet::new(vec![region(0, 0), region(1, 1)], 2);
//! let patterns = vec![TrajectoryPattern {
//!     premise: vec![RegionId(0)],
//!     consequence: RegionId(1),
//!     confidence: 0.8,
//!     support: 4,
//! }];
//!
//! let blob = encode_model(&regions, &patterns);
//! let restored = decode_model(&blob).unwrap();
//! assert_eq!(restored.patterns, patterns);
//! ```

mod bytes;
mod codec;
mod error;
pub mod format;
pub mod metrics;
mod model;
pub mod snapshot;
pub mod wal;
pub mod wire;

pub use error::DecodeError;
pub use model::{decode_model, encode_model, load_model, save_model, StoredModel};
pub use snapshot::{
    decode_snapshot, encode_snapshot, encode_snapshot_v1, HistorySnapshot, ObjectSnapshot,
};
pub use wal::{
    encode_wal_record, scan_wal, scan_wal_file, FsyncPolicy, WalOptions, WalRecord, WalScan,
    WalWriter,
};
