//! Store-snapshot codec: the full per-object state of a moving-objects
//! store at a point in time. Version 2 (current) writes compressed
//! history chunks verbatim; version 1 (raw samples only) stays
//! readable so committed fixtures and pre-upgrade snapshot files keep
//! opening.
//!
//! ```text
//! header   magic  b"HPMSNAP1"                8 bytes
//!          version varint                    1 | 2
//! payload  object_count varint
//!          objects: per object —
//!              id            varint
//!              start         varint          (first sample timestamp)
//!              history                       (v1: raw layout, no kind
//!                                             byte; v2: see below)
//!              trained_subs  varint          (0 = untrained)
//!              trained_len   varint          (samples covered by the
//!                                             last retrain; ≤ total)
//!              model flag    u8 0|1
//!              model         varint length + model-codec blob
//!                                            (present when flag = 1)
//! trailer  fnv1a over header + payload       8 bytes little-endian
//!
//! v2 history:
//!          kind          u8                  0 = raw, 1 = chunked
//!          raw:     sample_count varint, then f64 x, f64 y each
//!          chunked: chunk_count varint
//!                   per chunk —
//!                       samples    varint    (≥ 1)
//!                       bits       varint    (valid bits in stream)
//!                       word_count varint    (must equal ⌈bits/64⌉)
//!                       words      u64 LE × word_count (verbatim —
//!                                             never recompressed)
//!                   tail_count varint, then f64 x, f64 y each
//! ```
//!
//! Chunk payloads are the sealed `hpm_trajectory::SealedChunk` bit
//! streams written word-for-word: snapshotting a compressed store is a
//! memcpy per chunk, not a decompress/recompress cycle. On decode each
//! chunk is revalidated by [`SealedChunk::from_raw_parts`] — the full
//! stream must decode to exactly the declared sample count with clean
//! padding — so a corrupt chunk that somehow survived the whole-file
//! checksum still refuses to open with a typed error instead of
//! yielding garbage points.
//!
//! The trained predictor rides along as a nested model-codec blob
//! (`encode_model`'s format, checksum included), so model-level
//! corruption is detected even if the outer trailer were somehow
//! forged. The incremental `TrainerState` is *not* serialized: by the
//! workspace training contract, re-seeding a fresh trainer over the
//! first `trained_len` samples reproduces it exactly — recovery code
//! does that instead of persisting clustering internals.
//!
//! Snapshot files must be written to a temporary name, fsynced, and
//! renamed into place; a decode failure therefore means corruption
//! (or a torn tmp file that was never renamed), never a mid-write
//! state.

use crate::bytes::Buf as _;
use crate::codec::{fnv1a, get_count, get_f64, get_u64, get_varint, put_f64, put_u64, put_varint};
use crate::DecodeError;
use hpm_trajectory::SealedChunk;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"HPMSNAP1";

/// The current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 2;

/// The legacy raw-samples version, still decodable.
pub const SNAPSHOT_VERSION_V1: u32 = 1;

/// Sanity limit on objects per snapshot.
pub const MAX_SNAPSHOT_OBJECTS: usize = 100_000_000;

/// Sanity limit on samples per object.
pub const MAX_SNAPSHOT_SAMPLES: usize = 1_000_000_000;

/// Sanity limit on a nested model blob's length.
pub const MAX_SNAPSHOT_MODEL_BYTES: usize = 1 << 32;

/// Worst-case packed words per sample, rounded up (a delta is at most
/// 2 × 77 bits ≈ 2.5 words; the raw first sample is 2 words). Bounds
/// each chunk's `word_count` against its declared `samples` before
/// allocating.
const MAX_WORDS_PER_SAMPLE: usize = 3;

/// An object's serialized position history: either raw `(x, y)` pairs
/// (the only v1 form) or sealed compressed chunks plus a raw hot tail
/// (what a live store holds).
#[derive(Debug, Clone, PartialEq)]
pub enum HistorySnapshot {
    /// Every sample raw, in timestamp order.
    Raw(Vec<(f64, f64)>),
    /// Sealed chunks (oldest first) followed by the raw hot tail.
    Chunked {
        /// Compressed runs, written/read verbatim.
        chunks: Vec<SealedChunk>,
        /// Uncompressed most-recent samples.
        tail: Vec<(f64, f64)>,
    },
}

impl HistorySnapshot {
    /// Total samples across every form.
    pub fn len(&self) -> usize {
        match self {
            HistorySnapshot::Raw(points) => points.len(),
            HistorySnapshot::Chunked { chunks, tail } => {
                chunks.iter().map(SealedChunk::samples).sum::<usize>() + tail.len()
            }
        }
    }

    /// Whether the history holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattens to raw `(x, y)` pairs (decompressing chunks) — the
    /// lossless bridge to v1 encoding and to slice-based consumers.
    pub fn to_points(&self) -> Vec<(f64, f64)> {
        match self {
            HistorySnapshot::Raw(points) => points.clone(),
            HistorySnapshot::Chunked { chunks, tail } => {
                let mut out = Vec::with_capacity(self.len());
                for c in chunks {
                    out.extend(c.decoder().map(|p| (p.x, p.y)));
                }
                out.extend_from_slice(tail);
                out
            }
        }
    }
}

/// One object's durable state. `history` holds the samples in
/// timestamp order starting at `start`; `model` is an `encode_model`
/// blob of the trained predictor, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSnapshot {
    /// Raw object id.
    pub id: u64,
    /// Timestamp of the first sample.
    pub start: u64,
    /// Every sample, raw or chunk-compressed.
    pub history: HistorySnapshot,
    /// Full periods the predictor was trained on (0 = untrained).
    pub trained_subs: u64,
    /// Samples the last retrain covered (the first `trained_len`
    /// samples re-seed the incremental trainer). Always ≤
    /// `history.len()`.
    pub trained_len: u64,
    /// The trained model, encoded with the model codec.
    pub model: Option<Vec<u8>>,
}

fn put_points(buf: &mut Vec<u8>, points: &[(f64, f64)]) {
    put_varint(buf, points.len() as u64);
    for &(x, y) in points {
        put_f64(buf, x);
        put_f64(buf, y);
    }
}

fn get_points(buf: &mut &[u8]) -> Result<Vec<(f64, f64)>, DecodeError> {
    let samples = get_count(buf, MAX_SNAPSHOT_SAMPLES)?;
    if buf.len() < samples * 16 {
        return Err(DecodeError::Truncated);
    }
    let mut points = Vec::with_capacity(samples);
    for _ in 0..samples {
        let x = get_f64(buf)?;
        let y = get_f64(buf)?;
        points.push((x, y));
    }
    Ok(points)
}

fn put_object_tail(buf: &mut Vec<u8>, o: &ObjectSnapshot) {
    put_varint(buf, o.trained_subs);
    put_varint(buf, o.trained_len);
    match &o.model {
        Some(blob) => {
            buf.push(1);
            put_varint(buf, blob.len() as u64);
            buf.extend_from_slice(blob);
        }
        None => buf.push(0),
    }
}

fn seal_with_checksum(mut buf: Vec<u8>) -> Vec<u8> {
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Encodes a snapshot of every given object in the current (v2)
/// format. Chunked histories are written verbatim — no recompression.
pub fn encode_snapshot(objects: &[ObjectSnapshot]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + objects.len() * 64);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    put_varint(&mut buf, u64::from(SNAPSHOT_VERSION));
    put_varint(&mut buf, objects.len() as u64);
    for o in objects {
        debug_assert!(o.trained_len as usize <= o.history.len());
        put_varint(&mut buf, o.id);
        put_varint(&mut buf, o.start);
        match &o.history {
            HistorySnapshot::Raw(points) => {
                buf.push(0);
                put_points(&mut buf, points);
            }
            HistorySnapshot::Chunked { chunks, tail } => {
                buf.push(1);
                put_varint(&mut buf, chunks.len() as u64);
                for c in chunks {
                    put_varint(&mut buf, c.samples() as u64);
                    put_varint(&mut buf, c.bits());
                    put_varint(&mut buf, c.words().len() as u64);
                    for &w in c.words() {
                        put_u64(&mut buf, w);
                    }
                }
                put_points(&mut buf, tail);
            }
        }
        put_object_tail(&mut buf, o);
    }
    seal_with_checksum(buf)
}

/// Encodes in the legacy v1 raw-samples format (chunked histories are
/// flattened losslessly). Kept so the committed v1 fixture tests can
/// regenerate reference bytes and compatibility stays executable.
pub fn encode_snapshot_v1(objects: &[ObjectSnapshot]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + objects.len() * 64);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    put_varint(&mut buf, u64::from(SNAPSHOT_VERSION_V1));
    put_varint(&mut buf, objects.len() as u64);
    for o in objects {
        debug_assert!(o.trained_len as usize <= o.history.len());
        put_varint(&mut buf, o.id);
        put_varint(&mut buf, o.start);
        put_points(&mut buf, &o.history.to_points());
        put_object_tail(&mut buf, o);
    }
    seal_with_checksum(buf)
}

fn get_history_v2(buf: &mut &[u8], id: u64) -> Result<HistorySnapshot, DecodeError> {
    let kind = if buf.has_remaining() {
        let k = buf[0];
        *buf = &buf[1..];
        k
    } else {
        return Err(DecodeError::Truncated);
    };
    match kind {
        0 => Ok(HistorySnapshot::Raw(get_points(buf)?)),
        1 => {
            // Every chunk holds ≥ 1 sample, so chunk count is bounded
            // by the per-object sample limit.
            let chunk_count = get_count(buf, MAX_SNAPSHOT_SAMPLES)?;
            let mut chunks = Vec::with_capacity(chunk_count.min(1024));
            let mut total: u64 = 0;
            for _ in 0..chunk_count {
                let samples = get_count(buf, MAX_SNAPSHOT_SAMPLES)?;
                total = total.saturating_add(samples as u64);
                if total > MAX_SNAPSHOT_SAMPLES as u64 {
                    return Err(DecodeError::CountOutOfRange {
                        got: total,
                        limit: MAX_SNAPSHOT_SAMPLES as u64,
                    });
                }
                let bits = get_varint(buf)?;
                let word_count =
                    get_count(buf, samples.saturating_mul(MAX_WORDS_PER_SAMPLE).max(2))?;
                if buf.len() < word_count * 8 {
                    return Err(DecodeError::Truncated);
                }
                let mut words = Vec::with_capacity(word_count);
                for _ in 0..word_count {
                    words.push(get_u64(buf)?);
                }
                let samples_u32 =
                    u32::try_from(samples).map_err(|_| DecodeError::CountOutOfRange {
                        got: samples as u64,
                        limit: u64::from(u32::MAX),
                    })?;
                let chunk = SealedChunk::from_raw_parts(samples_u32, bits, words).map_err(|e| {
                    DecodeError::Invalid(format!("object {id}: corrupt chunk: {e}"))
                })?;
                chunks.push(chunk);
            }
            let tail = get_points(buf)?;
            Ok(HistorySnapshot::Chunked { chunks, tail })
        }
        other => Err(DecodeError::Invalid(format!(
            "object {id}: history kind {other} is not 0/1"
        ))),
    }
}

/// Decodes a snapshot (v1 or v2), validating the trailer checksum
/// first and every structural bound after — including a full decode
/// validation of every compressed chunk. Nested model blobs are *not*
/// decoded here — the caller hands them to `decode_model`, which
/// re-validates them.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Vec<ObjectSnapshot>, DecodeError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
        return Err(DecodeError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 trailer bytes"));
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(DecodeError::ChecksumMismatch { stored, computed });
    }
    if &payload[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let mut buf = &payload[SNAPSHOT_MAGIC.len()..];
    let buf = &mut buf;
    let version = get_varint(buf)?;
    if version != u64::from(SNAPSHOT_VERSION) && version != u64::from(SNAPSHOT_VERSION_V1) {
        return Err(DecodeError::UnsupportedVersion(
            version.min(u32::MAX as u64) as u32,
        ));
    }
    let count = get_count(buf, MAX_SNAPSHOT_OBJECTS)?;
    let mut objects = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let id = get_varint(buf)?;
        let start = get_varint(buf)?;
        let history = if version == u64::from(SNAPSHOT_VERSION_V1) {
            HistorySnapshot::Raw(get_points(buf)?)
        } else {
            get_history_v2(buf, id)?
        };
        let trained_subs = get_varint(buf)?;
        let trained_len = get_varint(buf)?;
        if trained_len as usize > history.len() {
            return Err(DecodeError::Invalid(format!(
                "object {id}: trained_len {trained_len} exceeds {} samples",
                history.len()
            )));
        }
        let model = match buf.first() {
            Some(0) => {
                *buf = &buf[1..];
                None
            }
            Some(1) => {
                *buf = &buf[1..];
                let len = get_count(buf, MAX_SNAPSHOT_MODEL_BYTES)?;
                if buf.len() < len {
                    return Err(DecodeError::Truncated);
                }
                let blob = buf[..len].to_vec();
                *buf = &buf[len..];
                Some(blob)
            }
            Some(&other) => {
                return Err(DecodeError::Invalid(format!(
                    "object {id}: model flag {other} is not 0/1"
                )))
            }
            None => return Err(DecodeError::Truncated),
        };
        objects.push(ObjectSnapshot {
            id,
            start,
            history,
            trained_subs,
            trained_len,
            model,
        });
    }
    if !buf.is_empty() {
        return Err(DecodeError::TrailingBytes(buf.len()));
    }
    Ok(objects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_geo::Point;

    fn chunk(n: usize, seed: f64) -> SealedChunk {
        let points: Vec<Point> = (0..n)
            .map(|i| Point::new(seed + i as f64 * 0.25, seed - i as f64 * 0.5))
            .collect();
        SealedChunk::seal(&points)
    }

    fn sample() -> Vec<ObjectSnapshot> {
        vec![
            ObjectSnapshot {
                id: 42,
                start: 1000,
                history: HistorySnapshot::Raw(vec![(0.0, 0.5), (-1.25, 2.0), (3.0, -0.0)]),
                trained_subs: 1,
                trained_len: 2,
                model: Some(vec![1, 2, 3, 4]),
            },
            ObjectSnapshot {
                id: 7,
                start: 50,
                history: HistorySnapshot::Chunked {
                    chunks: vec![chunk(20, 1.0), chunk(8, -3.5)],
                    tail: vec![(9.0, 9.5), (10.0, 10.5)],
                },
                trained_subs: 2,
                trained_len: 28,
                model: None,
            },
            ObjectSnapshot {
                id: u64::MAX,
                start: 0,
                history: HistorySnapshot::Raw(Vec::new()),
                trained_subs: 0,
                trained_len: 0,
                model: None,
            },
        ]
    }

    #[test]
    fn roundtrips() {
        let objects = sample();
        let blob = encode_snapshot(&objects);
        assert_eq!(decode_snapshot(&blob).unwrap(), objects);
        assert_eq!(decode_snapshot(&encode_snapshot(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn v1_still_decodes_and_flattens_losslessly() {
        let objects = sample();
        let blob = encode_snapshot_v1(&objects);
        let decoded = decode_snapshot(&blob).unwrap();
        assert_eq!(decoded.len(), objects.len());
        for (d, o) in decoded.iter().zip(&objects) {
            assert_eq!(d.id, o.id);
            assert_eq!(d.trained_subs, o.trained_subs);
            assert_eq!(d.trained_len, o.trained_len);
            assert_eq!(d.model, o.model);
            // v1 carries raw points; they must equal the flattened
            // original bit-for-bit (incl. the -0.0 above).
            match &d.history {
                HistorySnapshot::Raw(points) => {
                    let orig = o.history.to_points();
                    assert_eq!(points.len(), orig.len());
                    for (a, b) in points.iter().zip(&orig) {
                        assert_eq!(a.0.to_bits(), b.0.to_bits());
                        assert_eq!(a.1.to_bits(), b.1.to_bits());
                    }
                }
                other => panic!("v1 decoded non-raw history {other:?}"),
            }
        }
    }

    #[test]
    fn chunks_round_trip_verbatim() {
        // The encoded words must come back identical — snapshotting is
        // a copy, never a recompress.
        let objects = sample();
        let decoded = decode_snapshot(&encode_snapshot(&objects)).unwrap();
        match (&decoded[1].history, &objects[1].history) {
            (
                HistorySnapshot::Chunked { chunks: d, .. },
                HistorySnapshot::Chunked { chunks: o, .. },
            ) => {
                assert_eq!(d.len(), o.len());
                for (dc, oc) in d.iter().zip(o) {
                    assert_eq!(dc.bits(), oc.bits());
                    assert_eq!(dc.words(), oc.words());
                }
            }
            _ => panic!("chunked history lost its form"),
        }
    }

    #[test]
    fn checksum_guards_every_byte() {
        let blob = encode_snapshot(&sample());
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x10;
            assert!(decode_snapshot(&bad).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn truncations_rejected() {
        let blob = encode_snapshot(&sample());
        for cut in 0..blob.len() {
            assert!(decode_snapshot(&blob[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_chunk_refused_with_typed_error() {
        // Re-seal the checksum after flipping a packed word so only the
        // chunk-level validation can catch it.
        let objects = vec![ObjectSnapshot {
            id: 3,
            start: 0,
            history: HistorySnapshot::Chunked {
                chunks: vec![chunk(30, 2.0)],
                tail: vec![(1.0, 1.0)],
            },
            trained_subs: 0,
            trained_len: 0,
            model: None,
        }];
        let blob = encode_snapshot(&objects);
        // Flip every payload byte in turn (re-sealing the checksum each
        // time so only structural validation can object) and require at
        // least one flip — landing in the packed words, which dominate
        // this blob — to surface the typed corrupt-chunk Invalid.
        let payload_len = blob.len() - 8;
        let mut saw_chunk_invalid = false;
        for i in 14..payload_len {
            let mut bad = blob[..payload_len].to_vec();
            bad[i] ^= 0x80;
            let bad = seal_with_checksum(bad);
            match decode_snapshot(&bad) {
                Ok(decoded) => {
                    // A flip in the raw tail or trained fields can
                    // legitimately decode; structure must survive.
                    assert_eq!(decoded.len(), 1, "flip at {i} changed object count");
                }
                Err(DecodeError::Invalid(msg)) if msg.contains("corrupt chunk") => {
                    saw_chunk_invalid = true;
                }
                Err(_) => {}
            }
        }
        assert!(
            saw_chunk_invalid,
            "no flip produced a typed corrupt-chunk error"
        );
    }

    #[test]
    fn trained_len_bound_enforced() {
        let o = ObjectSnapshot {
            id: 9,
            start: 5,
            history: HistorySnapshot::Raw(vec![(0.0, 0.0), (1.0, 1.0)]),
            trained_subs: 1,
            trained_len: 3, // > 2 samples
            model: None,
        };
        // encode_snapshot debug-asserts, so build the blob by hand.
        let blob = {
            let mut buf = Vec::new();
            buf.extend_from_slice(SNAPSHOT_MAGIC);
            put_varint(&mut buf, u64::from(SNAPSHOT_VERSION));
            put_varint(&mut buf, 1);
            put_varint(&mut buf, o.id);
            put_varint(&mut buf, o.start);
            buf.push(0);
            match &o.history {
                HistorySnapshot::Raw(points) => put_points(&mut buf, points),
                _ => unreachable!(),
            }
            put_varint(&mut buf, o.trained_subs);
            put_varint(&mut buf, o.trained_len);
            buf.push(0);
            seal_with_checksum(buf)
        };
        assert!(matches!(
            decode_snapshot(&blob),
            Err(DecodeError::Invalid(_))
        ));
    }

    #[test]
    fn unknown_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(SNAPSHOT_MAGIC);
        put_varint(&mut buf, 3);
        put_varint(&mut buf, 0);
        let blob = seal_with_checksum(buf);
        assert!(matches!(
            decode_snapshot(&blob),
            Err(DecodeError::UnsupportedVersion(3))
        ));
    }
}
