//! Store-snapshot codec: the full per-object state of a moving-objects
//! store at a point in time, version 1.
//!
//! ```text
//! header   magic  b"HPMSNAP1"                8 bytes
//!          version varint                    (currently 1)
//! payload  object_count varint
//!          objects: per object —
//!              id            varint
//!              start         varint          (first sample timestamp)
//!              sample_count  varint
//!              samples       f64 x, f64 y each
//!              trained_subs  varint          (0 = untrained)
//!              trained_len   varint          (samples covered by the
//!                                             last retrain; ≤ count)
//!              model flag    u8 0|1
//!              model         varint length + model-codec blob
//!                                            (present when flag = 1)
//! trailer  fnv1a over header + payload       8 bytes little-endian
//! ```
//!
//! The trained predictor rides along as a nested model-codec blob
//! (`encode_model`'s format, checksum included), so model-level
//! corruption is detected even if the outer trailer were somehow
//! forged. The incremental `TrainerState` is *not* serialized: by the
//! workspace training contract, re-seeding a fresh trainer over the
//! first `trained_len` samples reproduces it exactly — recovery code
//! does that instead of persisting clustering internals.
//!
//! Snapshot files must be written to a temporary name, fsynced, and
//! renamed into place; a decode failure therefore means corruption
//! (or a torn tmp file that was never renamed), never a mid-write
//! state.

use crate::codec::{fnv1a, get_count, get_f64, get_varint, put_f64, put_varint};
use crate::DecodeError;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"HPMSNAP1";

/// The current (and only) snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Sanity limit on objects per snapshot.
pub const MAX_SNAPSHOT_OBJECTS: usize = 100_000_000;

/// Sanity limit on samples per object.
pub const MAX_SNAPSHOT_SAMPLES: usize = 1_000_000_000;

/// Sanity limit on a nested model blob's length.
pub const MAX_SNAPSHOT_MODEL_BYTES: usize = 1 << 32;

/// One object's durable state. `points` is `(x, y)` pairs in timestamp
/// order starting at `start`; `model` is an `encode_model` blob of the
/// trained predictor, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSnapshot {
    /// Raw object id.
    pub id: u64,
    /// Timestamp of the first sample.
    pub start: u64,
    /// Every sample, in timestamp order.
    pub points: Vec<(f64, f64)>,
    /// Full periods the predictor was trained on (0 = untrained).
    pub trained_subs: u64,
    /// Samples the last retrain covered (`points[..trained_len]`
    /// re-seeds the incremental trainer). Always ≤ `points.len()`.
    pub trained_len: u64,
    /// The trained model, encoded with the model codec.
    pub model: Option<Vec<u8>>,
}

/// Encodes a snapshot of every given object.
pub fn encode_snapshot(objects: &[ObjectSnapshot]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + objects.len() * 64);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    put_varint(&mut buf, u64::from(SNAPSHOT_VERSION));
    put_varint(&mut buf, objects.len() as u64);
    for o in objects {
        debug_assert!(o.trained_len as usize <= o.points.len());
        put_varint(&mut buf, o.id);
        put_varint(&mut buf, o.start);
        put_varint(&mut buf, o.points.len() as u64);
        for &(x, y) in &o.points {
            put_f64(&mut buf, x);
            put_f64(&mut buf, y);
        }
        put_varint(&mut buf, o.trained_subs);
        put_varint(&mut buf, o.trained_len);
        match &o.model {
            Some(blob) => {
                buf.push(1);
                put_varint(&mut buf, blob.len() as u64);
                buf.extend_from_slice(blob);
            }
            None => buf.push(0),
        }
    }
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Decodes a snapshot, validating the trailer checksum first and every
/// structural bound after. Nested model blobs are *not* decoded here —
/// the caller hands them to `decode_model`, which re-validates them.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Vec<ObjectSnapshot>, DecodeError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
        return Err(DecodeError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 trailer bytes"));
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(DecodeError::ChecksumMismatch { stored, computed });
    }
    if &payload[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let mut buf = &payload[SNAPSHOT_MAGIC.len()..];
    let buf = &mut buf;
    let version = get_varint(buf)?;
    if version != u64::from(SNAPSHOT_VERSION) {
        return Err(DecodeError::UnsupportedVersion(
            version.min(u32::MAX as u64) as u32,
        ));
    }
    let count = get_count(buf, MAX_SNAPSHOT_OBJECTS)?;
    let mut objects = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let id = get_varint(buf)?;
        let start = get_varint(buf)?;
        let samples = get_count(buf, MAX_SNAPSHOT_SAMPLES)?;
        if buf.len() < samples * 16 {
            return Err(DecodeError::Truncated);
        }
        let mut points = Vec::with_capacity(samples);
        for _ in 0..samples {
            let x = get_f64(buf)?;
            let y = get_f64(buf)?;
            points.push((x, y));
        }
        let trained_subs = get_varint(buf)?;
        let trained_len = get_varint(buf)?;
        if trained_len as usize > points.len() {
            return Err(DecodeError::Invalid(format!(
                "object {id}: trained_len {trained_len} exceeds {} samples",
                points.len()
            )));
        }
        let model = match buf.first() {
            Some(0) => {
                *buf = &buf[1..];
                None
            }
            Some(1) => {
                *buf = &buf[1..];
                let len = get_count(buf, MAX_SNAPSHOT_MODEL_BYTES)?;
                if buf.len() < len {
                    return Err(DecodeError::Truncated);
                }
                let blob = buf[..len].to_vec();
                *buf = &buf[len..];
                Some(blob)
            }
            Some(&other) => {
                return Err(DecodeError::Invalid(format!(
                    "object {id}: model flag {other} is not 0/1"
                )))
            }
            None => return Err(DecodeError::Truncated),
        };
        objects.push(ObjectSnapshot {
            id,
            start,
            points,
            trained_subs,
            trained_len,
            model,
        });
    }
    if !buf.is_empty() {
        return Err(DecodeError::TrailingBytes(buf.len()));
    }
    Ok(objects)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ObjectSnapshot> {
        vec![
            ObjectSnapshot {
                id: 42,
                start: 1000,
                points: vec![(0.0, 0.5), (-1.25, 2.0), (3.0, -0.0)],
                trained_subs: 1,
                trained_len: 2,
                model: Some(vec![1, 2, 3, 4]),
            },
            ObjectSnapshot {
                id: u64::MAX,
                start: 0,
                points: Vec::new(),
                trained_subs: 0,
                trained_len: 0,
                model: None,
            },
        ]
    }

    #[test]
    fn roundtrips() {
        let objects = sample();
        let blob = encode_snapshot(&objects);
        assert_eq!(decode_snapshot(&blob).unwrap(), objects);
        assert_eq!(decode_snapshot(&encode_snapshot(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn checksum_guards_every_byte() {
        let blob = encode_snapshot(&sample());
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x10;
            assert!(decode_snapshot(&bad).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn truncations_rejected() {
        let blob = encode_snapshot(&sample());
        for cut in 0..blob.len() {
            assert!(decode_snapshot(&blob[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trained_len_bound_enforced() {
        let mut o = sample().remove(0);
        o.trained_len = o.points.len() as u64 + 1;
        // encode_snapshot debug-asserts; build the blob by hand in
        // release terms via a valid encode then a targeted field edit
        // being impractical, just check the decoder path directly.
        let blob = {
            let mut buf = Vec::new();
            buf.extend_from_slice(SNAPSHOT_MAGIC);
            put_varint(&mut buf, 1);
            put_varint(&mut buf, 1);
            put_varint(&mut buf, o.id);
            put_varint(&mut buf, o.start);
            put_varint(&mut buf, o.points.len() as u64);
            for &(x, y) in &o.points {
                put_f64(&mut buf, x);
                put_f64(&mut buf, y);
            }
            put_varint(&mut buf, o.trained_subs);
            put_varint(&mut buf, o.trained_len);
            buf.push(0);
            let checksum = fnv1a(&buf);
            buf.extend_from_slice(&checksum.to_le_bytes());
            buf
        };
        assert!(matches!(
            decode_snapshot(&blob),
            Err(DecodeError::Invalid(_))
        ));
    }
}
