//! Decoding errors.

use std::fmt;

/// Why a model blob failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the structure was complete.
    Truncated,
    /// A varint used more than 64 bits.
    VarintOverflow,
    /// The magic bytes did not match — not a model file.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u32),
    /// A length prefix exceeded its sanity limit (likely corruption).
    CountOutOfRange {
        /// The decoded count.
        got: u64,
        /// The maximum this field allows.
        limit: u64,
    },
    /// The trailer checksum did not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// The decoded structures violate model invariants (e.g. a pattern
    /// referencing a missing region).
    Invalid(String),
    /// Trailing bytes after the trailer.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            DecodeError::BadMagic => write!(f, "bad magic bytes (not an HPM model file)"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::CountOutOfRange { got, limit } => {
                write!(f, "count {got} exceeds limit {limit}")
            }
            DecodeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            DecodeError::Invalid(why) => write!(f, "invalid model: {why}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after trailer"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(DecodeError, &str)> = vec![
            (DecodeError::Truncated, "truncated"),
            (DecodeError::BadMagic, "magic"),
            (DecodeError::UnsupportedVersion(9), "version 9"),
            (DecodeError::CountOutOfRange { got: 5, limit: 4 }, "count 5"),
            (
                DecodeError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "checksum",
            ),
            (DecodeError::Invalid("x".into()), "invalid"),
            (DecodeError::TrailingBytes(3), "3 trailing"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
