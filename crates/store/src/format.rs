//! The on-disk model format, version 1.
//!
//! ```text
//! header   magic  b"HPMMODEL"            8 bytes
//!          version varint                (currently 1)
//! payload  period  varint
//!          region_count varint
//!          regions: per region, in id order —
//!              offset       varint
//!              local_index  varint
//!              support      varint
//!              centroid     f64 x, f64 y
//!              bbox         f64 min.x, min.y, max.x, max.y
//!          pattern_count varint
//!          patterns: per pattern —
//!              premise_len  varint
//!              premise ids  varint each (delta-coded, ascending)
//!              consequence  varint
//!              confidence   f64
//!              support      varint
//! trailer  fnv1a over header + payload   8 bytes little-endian
//! ```
//!
//! Region ids are implicit (dense, in order), so they are not stored.
//! Premise ids are delta-coded: the first id verbatim, each subsequent
//! id as the (positive) difference from its predecessor — patterns
//! reference nearby offsets, so deltas are small and usually one byte.

/// Magic bytes opening every model file.
pub const MAGIC: &[u8; 8] = b"HPMMODEL";

/// The current (and only) format version.
pub const VERSION: u32 = 1;

/// Sanity limit on region counts (a discovery run over a single
/// object's history stays far below this).
pub const MAX_REGIONS: usize = 50_000_000;

/// Sanity limit on pattern counts.
pub const MAX_PATTERNS: usize = 500_000_000;

/// Sanity limit on premise length.
pub const MAX_PREMISE: usize = 10_000;
