//! Per-shard write-ahead log for the moving-objects store.
//!
//! One WAL file is an 8-byte magic header followed by self-delimiting
//! frames, each carrying one ingest operation:
//!
//! ```text
//! header  magic b"HPMWAL01"                    8 bytes
//! frame   payload_len  varint                  (≤ MAX_WAL_PAYLOAD)
//!         payload      tag u8 + fields
//!         checksum     fnv1a(payload)          8 bytes little-endian
//!
//! payload tag 1 (Report)  object varint, timestamp varint,
//!                         x f64, y f64
//!         tag 2 (Remove)  object varint
//! ```
//!
//! Frames are append-only and individually checksummed, so a crash
//! mid-write leaves a file whose longest valid prefix is exactly the
//! operations that were durably logged: [`scan_wal`] stops at the
//! first frame that fails to parse and reports how many bytes were
//! valid. Writers never append after a torn tail — recovery rotates to
//! a fresh file instead — so "first invalid frame" and "crash point"
//! coincide.
//!
//! [`WalWriter`] batches appends in memory and writes them out every
//! `group_commit` records (and on [`flush`](WalWriter::flush)),
//! fsyncing per [`FsyncPolicy`]. Physical writes are routed through
//! the `hpm-check` failpoint hook (`wal.append`), which is how the
//! crash-recovery suites tear this file at chosen byte offsets.

use crate::bytes::{BufMut, StackBuf};
use crate::codec::{fnv1a, get_f64, get_varint, put_f64, put_varint};
use crate::metrics;
use crate::DecodeError;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"HPMWAL01";

/// Sanity limit on a frame payload (a report is ≤ 37 bytes; anything
/// larger is corruption, not a record).
pub const MAX_WAL_PAYLOAD: usize = 64;

/// Failpoint name the writer's physical writes are routed through.
pub const WAL_APPEND_FAILPOINT: &str = "wal.append";

/// One durably logged ingest operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalRecord {
    /// A location report accepted by the store.
    Report {
        /// Raw object id.
        object: u64,
        /// Sample timestamp.
        timestamp: u64,
        /// Position x.
        x: f64,
        /// Position y.
        y: f64,
    },
    /// An object dropped from the store.
    Remove {
        /// Raw object id.
        object: u64,
    },
}

const TAG_REPORT: u8 = 1;
const TAG_REMOVE: u8 = 2;

/// Appends one framed record (length, payload, checksum) to `out`.
/// The payload is staged on the stack — this runs once per accepted
/// report, where a heap allocation costs more than the encode.
pub fn encode_wal_record(out: &mut Vec<u8>, record: &WalRecord) {
    let mut payload = StackBuf::<MAX_WAL_PAYLOAD>::new();
    match record {
        WalRecord::Report {
            object,
            timestamp,
            x,
            y,
        } => {
            payload.put_u8(TAG_REPORT);
            put_varint(&mut payload, *object);
            put_varint(&mut payload, *timestamp);
            put_f64(&mut payload, *x);
            put_f64(&mut payload, *y);
        }
        WalRecord::Remove { object } => {
            payload.put_u8(TAG_REMOVE);
            put_varint(&mut payload, *object);
        }
    }
    let payload = payload.filled();
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
}

fn decode_payload(mut p: &[u8]) -> Result<WalRecord, DecodeError> {
    let buf = &mut p;
    if buf.is_empty() {
        return Err(DecodeError::Truncated);
    }
    let tag = buf[0];
    *buf = &buf[1..];
    let record = match tag {
        TAG_REPORT => WalRecord::Report {
            object: get_varint(buf)?,
            timestamp: get_varint(buf)?,
            x: get_f64(buf)?,
            y: get_f64(buf)?,
        },
        TAG_REMOVE => WalRecord::Remove {
            object: get_varint(buf)?,
        },
        other => return Err(DecodeError::Invalid(format!("unknown WAL tag {other}"))),
    };
    if !buf.is_empty() {
        return Err(DecodeError::TrailingBytes(buf.len()));
    }
    Ok(record)
}

/// Result of scanning a WAL file's bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// Every record of the longest valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset one past each record's frame — `offsets[i]` is the
    /// file length at which exactly `i + 1` records survive.
    pub offsets: Vec<usize>,
    /// Bytes of the valid prefix (header included).
    pub valid_len: usize,
    /// Why the scan stopped before the end of the input, if it did —
    /// a torn tail (crash) or corruption. `None` means the whole file
    /// parsed.
    pub torn: Option<DecodeError>,
}

/// Parses the longest valid prefix of a WAL file's bytes. Never fails:
/// a file without even a whole magic header is an empty log with a
/// torn tail.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut scan = WalScan {
        records: Vec::new(),
        offsets: Vec::new(),
        valid_len: 0,
        torn: None,
    };
    if bytes.len() < WAL_MAGIC.len() {
        if !bytes.is_empty() {
            scan.torn = Some(DecodeError::Truncated);
        }
        return scan;
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        scan.torn = Some(DecodeError::BadMagic);
        return scan;
    }
    let mut offset = WAL_MAGIC.len();
    scan.valid_len = offset;
    while offset < bytes.len() {
        let mut cursor = &bytes[offset..];
        let payload_len = match get_varint(&mut cursor) {
            Ok(v) if v as usize <= MAX_WAL_PAYLOAD => v as usize,
            Ok(v) => {
                scan.torn = Some(DecodeError::CountOutOfRange {
                    got: v,
                    limit: MAX_WAL_PAYLOAD as u64,
                });
                return scan;
            }
            Err(e) => {
                scan.torn = Some(e);
                return scan;
            }
        };
        if cursor.len() < payload_len + 8 {
            scan.torn = Some(DecodeError::Truncated);
            return scan;
        }
        let payload = &cursor[..payload_len];
        let stored = u64::from_le_bytes(
            cursor[payload_len..payload_len + 8]
                .try_into()
                .expect("8 checksum bytes"),
        );
        let computed = fnv1a(payload);
        if stored != computed {
            scan.torn = Some(DecodeError::ChecksumMismatch { stored, computed });
            return scan;
        }
        match decode_payload(payload) {
            Ok(record) => {
                let frame_end = offset + (bytes.len() - offset - cursor.len()) + payload_len + 8;
                scan.records.push(record);
                scan.offsets.push(frame_end);
                scan.valid_len = frame_end;
                offset = frame_end;
            }
            Err(e) => {
                scan.torn = Some(e);
                return scan;
            }
        }
    }
    scan
}

/// Reads and scans a WAL file. A missing file is an empty log (crash
/// windows exist where a rotated file was never created).
pub fn scan_wal_file(path: &Path) -> io::Result<WalScan> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(scan_wal(&bytes)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(scan_wal(&[])),
        Err(e) => Err(e),
    }
}

/// When the writer fsyncs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every physical write (group-commit batch).
    /// Survives power loss up to the last committed batch.
    Always,
    /// Never fsync; durability is up to the OS page cache. Survives
    /// process crashes (the cache outlives the process) but not power
    /// loss — the right trade for tests and replaceable data.
    Never,
}

/// Writer knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Records buffered per physical write. 1 = write-through.
    pub group_commit: usize,
    /// Fsync cadence.
    pub fsync: FsyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            group_commit: 1,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// Append-only WAL writer with group commit.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    pending: Vec<u8>,
    pending_records: usize,
    opts: WalOptions,
}

impl WalWriter {
    /// Creates a fresh WAL file (truncating any previous content) and
    /// durably writes its header.
    pub fn create(path: impl Into<PathBuf>, opts: WalOptions) -> io::Result<Self> {
        let path = path.into();
        let opts = WalOptions {
            group_commit: opts.group_commit.max(1),
            ..opts
        };
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(WAL_MAGIC)?;
        if opts.fsync == FsyncPolicy::Always {
            file.sync_data()?;
        }
        Ok(WalWriter {
            file,
            path,
            pending: Vec::new(),
            pending_records: 0,
            opts,
        })
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Logs one record; performs a physical write every `group_commit`
    /// records. An error means the record (and any batched
    /// predecessors) may not be durable — the caller must not apply
    /// the operation it logs.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let _span = hpm_obs::span!(metrics::WAL_APPEND_SPAN);
        encode_wal_record(&mut self.pending, record);
        self.pending_records += 1;
        hpm_obs::counter!(metrics::WAL_RECORDS).add(1);
        if self.pending_records >= self.opts.group_commit {
            self.commit()?;
        }
        Ok(())
    }

    /// Writes out any batched records (a partial group) and fsyncs per
    /// policy.
    pub fn flush(&mut self) -> io::Result<()> {
        self.commit()
    }

    fn commit(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        match hpm_check::fail::on_write(WAL_APPEND_FAILPOINT, self.pending.len()) {
            hpm_check::fail::WriteOutcome::Full => self.file.write_all(&self.pending)?,
            hpm_check::fail::WriteOutcome::Short(n) => self.file.write_all(&self.pending[..n])?,
            hpm_check::fail::WriteOutcome::TornExit(n) => {
                let _ = self.file.write_all(&self.pending[..n]);
                let _ = self.file.flush();
                eprintln!("hpm-check failpoint: torn {WAL_APPEND_FAILPOINT}, exiting");
                std::process::exit(hpm_check::fail::EXIT_CODE);
            }
            hpm_check::fail::WriteOutcome::ExitNow => {
                eprintln!("hpm-check failpoint: exit at {WAL_APPEND_FAILPOINT}");
                std::process::exit(hpm_check::fail::EXIT_CODE);
            }
        }
        hpm_obs::counter!(metrics::WAL_BYTES).add(self.pending.len() as u64);
        self.pending.clear();
        self.pending_records = 0;
        if self.opts.fsync == FsyncPolicy::Always {
            let _span = hpm_obs::span!(metrics::WAL_FSYNC_SPAN);
            self.file.sync_data()?;
        }
        Ok(())
    }
}

impl Drop for WalWriter {
    /// Best-effort flush of a partial group on drop; clean shutdowns
    /// should call [`flush`](Self::flush) and check the error.
    fn drop(&mut self) {
        let _ = self.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Report {
                object: 7,
                timestamp: 0,
                x: 1.5,
                y: -2.25,
            },
            WalRecord::Report {
                object: u64::MAX,
                timestamp: 12_345,
                x: f64::MIN_POSITIVE,
                y: 0.0,
            },
            WalRecord::Remove { object: 7 },
            WalRecord::Report {
                object: 7,
                timestamp: 500,
                x: -0.0,
                y: 3.0,
            },
        ]
    }

    fn encoded(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for r in records {
            encode_wal_record(&mut bytes, r);
        }
        bytes
    }

    #[test]
    fn records_roundtrip() {
        let records = sample_records();
        let scan = scan_wal(&encoded(&records));
        assert_eq!(scan.records, records);
        assert_eq!(scan.torn, None);
        assert_eq!(scan.offsets.len(), records.len());
        assert_eq!(scan.valid_len, encoded(&records).len());
    }

    #[test]
    fn every_truncation_point_yields_a_valid_prefix() {
        let records = sample_records();
        let bytes = encoded(&records);
        for cut in 0..bytes.len() {
            let scan = scan_wal(&bytes[..cut]);
            let survivors = scan.offsets.iter().filter(|&&o| o <= cut).count();
            assert_eq!(scan.records.len(), survivors, "cut at {cut}");
            assert_eq!(scan.records, records[..survivors], "cut at {cut}");
            if cut != bytes.len() && scan.valid_len != cut {
                assert!(scan.torn.is_some(), "cut at {cut} dropped bytes silently");
            }
        }
    }

    #[test]
    fn corrupt_byte_stops_scan_at_previous_record() {
        let records = sample_records();
        let bytes = encoded(&records);
        // Flip one byte inside the second frame's payload.
        let mut corrupt = bytes.clone();
        let second_frame_start = scan_wal(&bytes).offsets[0];
        corrupt[second_frame_start + 2] ^= 0x40;
        let scan = scan_wal(&corrupt);
        assert_eq!(scan.records, records[..1]);
        assert!(scan.torn.is_some());
        assert_eq!(scan.valid_len, second_frame_start);
    }

    #[test]
    fn bad_magic_is_an_empty_log() {
        let scan = scan_wal(b"NOTAWAL!rest");
        assert!(scan.records.is_empty());
        assert_eq!(scan.torn, Some(DecodeError::BadMagic));
        // Sub-header files are a torn header, not corruption.
        let scan = scan_wal(&WAL_MAGIC[..5]);
        assert!(scan.records.is_empty());
        assert_eq!(scan.torn, Some(DecodeError::Truncated));
        assert_eq!(scan_wal(&[]).torn, None);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut bytes = WAL_MAGIC.to_vec();
        crate::codec::put_varint(&mut bytes, 10_000);
        bytes.extend_from_slice(&[0u8; 64]);
        let scan = scan_wal(&bytes);
        assert!(scan.records.is_empty());
        assert!(matches!(
            scan.torn,
            Some(DecodeError::CountOutOfRange { got: 10_000, .. })
        ));
    }

    #[test]
    fn writer_groups_commits() {
        let dir = std::env::temp_dir().join(format!("hpm-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("group.log");
        let records = sample_records();
        {
            let mut w = WalWriter::create(
                &path,
                WalOptions {
                    group_commit: 3,
                    fsync: FsyncPolicy::Never,
                },
            )
            .unwrap();
            for r in &records[..2] {
                w.append(r).unwrap();
            }
            // Two records batched, none physically written yet.
            assert_eq!(std::fs::metadata(&path).unwrap().len(), 8);
            w.append(&records[2]).unwrap();
            assert!(std::fs::metadata(&path).unwrap().len() > 8);
            w.append(&records[3]).unwrap();
            w.flush().unwrap();
        }
        let scan = scan_wal_file(&path).unwrap();
        assert_eq!(scan.records, records);
        assert_eq!(scan.torn, None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_scans_empty() {
        let scan = scan_wal_file(Path::new("/nonexistent/hpm-wal")).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.torn, None);
    }
}
