//! Primitive encoders/decoders: LEB128 varints, doubles, and the
//! FNV-1a checksum.

use crate::bytes::{Buf, BufMut};
use crate::DecodeError;

/// Writes an unsigned LEB128 varint.
pub(crate) fn put_varint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint (max 10 bytes).
pub(crate) fn get_varint(buf: &mut impl Buf) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(DecodeError::Truncated);
        }
        let byte = buf.get_u8();
        if shift == 63 && byte > 1 {
            return Err(DecodeError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::VarintOverflow);
        }
    }
}

/// Writes an `f64` as little-endian bits.
pub(crate) fn put_f64(buf: &mut impl BufMut, v: f64) {
    buf.put_f64_le(v);
}

/// Reads an `f64`; rejects truncation but accepts any finite/non-finite
/// bit pattern (validity is the caller's semantic concern).
pub(crate) fn get_f64(buf: &mut impl Buf) -> Result<f64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_f64_le())
}

/// Writes a `u64` little-endian (fixed 8 bytes — used for packed chunk
/// words, which are high-entropy and gain nothing from varints).
pub(crate) fn put_u64(buf: &mut impl BufMut, v: u64) {
    buf.put_u64_le(v);
}

/// Reads a little-endian `u64`; rejects truncation.
pub(crate) fn get_u64(buf: &mut impl Buf) -> Result<u64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u64_le())
}

/// Reads a `usize`-sized count, guarding against absurd allocations on
/// corrupt input: the count may not exceed `limit`.
pub(crate) fn get_count(buf: &mut impl Buf, limit: usize) -> Result<usize, DecodeError> {
    let v = get_varint(buf)?;
    if v > limit as u64 {
        return Err(DecodeError::CountOutOfRange {
            got: v,
            limit: limit as u64,
        });
    }
    Ok(v as usize)
}

/// FNV-1a over a byte slice — the trailer checksum.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> u64 {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        get_varint(&mut &buf[..]).unwrap()
    }

    #[test]
    fn varint_roundtrips() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn varint_sizes() {
        let size = |v: u64| {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            buf.len()
        };
        assert_eq!(size(0), 1);
        assert_eq!(size(127), 1);
        assert_eq!(size(128), 2);
        assert_eq!(size(u64::MAX), 10);
    }

    #[test]
    fn varint_truncated_rejected() {
        let buf = [0x80u8, 0x80]; // continuation bits with no terminator
        assert!(matches!(
            get_varint(&mut &buf[..]),
            Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn varint_overflow_rejected() {
        let buf = [0xFFu8; 11];
        assert!(matches!(
            get_varint(&mut &buf[..]),
            Err(DecodeError::VarintOverflow)
        ));
    }

    #[test]
    fn f64_roundtrips() {
        for v in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 12345.6789] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            assert_eq!(get_f64(&mut &buf[..]).unwrap(), v);
        }
        assert!(matches!(
            get_f64(&mut &[0u8; 4][..]),
            Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn count_limit_enforced() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1000);
        assert!(matches!(
            get_count(&mut &buf[..], 999),
            Err(DecodeError::CountOutOfRange { got: 1000, .. })
        ));
        let mut buf2 = Vec::new();
        put_varint(&mut buf2, 999);
        assert_eq!(get_count(&mut &buf2[..], 999).unwrap(), 999);
    }

    #[test]
    fn fnv_is_stable() {
        // Reference value of FNV-1a("hello").
        assert_eq!(fnv1a(b"hello"), 0xA430_D846_80AA_BD0B);
        assert_ne!(fnv1a(b"hello"), fnv1a(b"hellp"));
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
    }
}
