//! The codec primitives on concrete byte-slice types, for sibling
//! crates building their own record formats (the object store's WAL
//! frames and snapshot files) on the same wire conventions as the
//! model codec: LEB128 varints, little-endian IEEE-754 doubles, and
//! FNV-1a checksums.

use crate::codec;
use crate::DecodeError;

/// Writes an unsigned LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, v: u64) {
    codec::put_varint(buf, v);
}

/// Reads an unsigned LEB128 varint (max 10 bytes), advancing the
/// slice.
pub fn get_varint(buf: &mut &[u8]) -> Result<u64, DecodeError> {
    codec::get_varint(buf)
}

/// Writes an `f64` as little-endian bits.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    codec::put_f64(buf, v);
}

/// Reads an `f64`, advancing the slice; rejects truncation only (bit
/// patterns are the caller's semantic concern).
pub fn get_f64(buf: &mut &[u8]) -> Result<f64, DecodeError> {
    codec::get_f64(buf)
}

/// Reads a `usize`-sized count that may not exceed `limit`.
pub fn get_count(buf: &mut &[u8], limit: usize) -> Result<usize, DecodeError> {
    codec::get_count(buf, limit)
}

/// FNV-1a over a byte slice — the workspace checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    codec::fnv1a(bytes)
}
