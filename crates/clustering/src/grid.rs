//! Uniform-grid spatial index for fixed-radius neighbour queries.

use hpm_geo::Point;
use std::collections::HashMap;

/// A uniform grid over a point set with cell side = query radius.
///
/// A radius-`eps` disc around any point is covered by the 3×3 block of
/// cells around the point's cell, so a neighbourhood query inspects at
/// most 9 cells.
#[derive(Debug)]
pub struct GridIndex<'a> {
    points: &'a [Point],
    cell: f64,
    buckets: HashMap<(i64, i64), Vec<u32>>,
}

impl<'a> GridIndex<'a> {
    /// Builds the index; `cell` must be positive (use the query
    /// radius).
    ///
    /// # Panics
    /// Panics if `cell <= 0` or not finite.
    pub fn build(points: &'a [Point], cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell size must be positive");
        let mut buckets: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            buckets
                .entry(Self::key(p, cell))
                .or_default()
                .push(i as u32);
        }
        GridIndex {
            points,
            cell,
            buckets,
        }
    }

    #[inline]
    fn key(p: &Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Indices of all points within `radius` of `center` (inclusive,
    /// and including the point itself when present in the set).
    ///
    /// `radius` must be ≤ the cell size used at build time for the
    /// 3×3-block guarantee to hold; this is asserted in debug builds.
    pub fn neighbors_within(&self, center: &Point, radius: f64) -> Vec<u32> {
        debug_assert!(radius <= self.cell + 1e-12, "radius exceeds cell size");
        let mut out = Vec::new();
        self.for_each_neighbor(center, radius, |i| out.push(i));
        out
    }

    /// Visits the index of every point within `radius` of `center`
    /// without allocating (hot path of DBSCAN).
    pub fn for_each_neighbor(&self, center: &Point, radius: f64, mut f: impl FnMut(u32)) {
        let (cx, cy) = Self::key(center, self.cell);
        let r2 = radius * radius;
        for gx in cx - 1..=cx + 1 {
            for gy in cy - 1..=cy + 1 {
                if let Some(bucket) = self.buckets.get(&(gx, gy)) {
                    for &i in bucket {
                        if self.points[i as usize].distance_sq(center) <= r2 {
                            f(i);
                        }
                    }
                }
            }
        }
    }

    /// Number of points within `radius` of `center`.
    pub fn count_within(&self, center: &Point, radius: f64) -> usize {
        let mut n = 0;
        self.for_each_neighbor(center, radius, |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_within(points: &[Point], c: &Point, r: f64) -> Vec<u32> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_sq(c) <= r * r)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn matches_naive_on_grid_lattice() {
        let pts: Vec<Point> = (0..10)
            .flat_map(|x| (0..10).map(move |y| Point::new(x as f64, y as f64)))
            .collect();
        let idx = GridIndex::build(&pts, 1.5);
        for c in &pts {
            let mut got = idx.neighbors_within(c, 1.5);
            got.sort_unstable();
            assert_eq!(got, naive_within(&pts, c, 1.5));
        }
    }

    #[test]
    fn includes_self_and_boundary() {
        let pts = [Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let idx = GridIndex::build(&pts, 2.0);
        let n = idx.neighbors_within(&pts[0], 2.0);
        assert_eq!(n.len(), 2, "boundary point at exactly eps is included");
    }

    #[test]
    fn negative_coordinates() {
        let pts = [
            Point::new(-1.0, -1.0),
            Point::new(-1.2, -0.9),
            Point::new(5.0, 5.0),
        ];
        let idx = GridIndex::build(&pts, 0.5);
        let n = idx.neighbors_within(&pts[0], 0.5);
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn count_matches_neighbors_len() {
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new((i % 7) as f64, (i / 7) as f64))
            .collect();
        let idx = GridIndex::build(&pts, 1.0);
        for c in &pts {
            assert_eq!(idx.count_within(c, 1.0), idx.neighbors_within(c, 1.0).len());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_panics() {
        GridIndex::build(&[], 0.0);
    }
}
