//! Incremental DBSCAN point insertion (IncDBSCAN-style, Ester et al.
//! 1998): classify one new point against the existing density
//! structure and either absorb it *locally* — provably without
//! changing any other point's label — or report **structure drift**
//! and let the caller rebuild.
//!
//! The batch [`dbscan`](crate::dbscan) sweep is deterministic in a way
//! the incremental path can replicate exactly:
//!
//! * cluster ids are assigned in ascending order of each cluster's
//!   smallest core-point index (seeds are tried in index order and a
//!   cluster expands fully before the next seed is considered);
//! * a border point belongs to the **lowest-id** cluster with a core
//!   point in its `Eps`-neighbourhood (that cluster expands first and
//!   assigned points are never re-claimed);
//! * cluster summaries fold members in ascending index order.
//!
//! A new point is appended at the highest index, so the *safe* cases —
//! noise, border join, core join that reaches only one cluster's
//! members — provably leave every existing label, every cluster id and
//! every summary fold-order unchanged, and the updated state is
//! *identical* to re-running batch DBSCAN over the extended point set
//! (property-tested in `tests/props.rs`). Every other case (a
//! neighbour crossing the `MinPts` core threshold, a merge, a brand
//! new cluster, absorption of non-members) is conservatively reported
//! as [`InsertOutcome::Drift`]: the caller falls back to a batch
//! rebuild. Over-reporting drift costs only time, never correctness.

use crate::{dbscan, Cluster, DbscanParams, Label};
use hpm_geo::mem::{hashmap_bytes, vec_cap_bytes};
use hpm_geo::{BoundingBox, MemUse, Point};
use std::collections::HashMap;

/// Why an insertion could not be absorbed locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// A neighbour crossed the `MinPts` threshold and became core.
    Promotion,
    /// The new point is core but reaches no existing cluster.
    NewCluster,
    /// The new point is core and connects two or more clusters.
    Merge,
    /// The new point is core and would pull non-members (noise or
    /// other-cluster points) into its cluster.
    Absorption,
}

/// Result of one [`IncrementalDbscan::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The point joined no cluster; no other label changed.
    Noise,
    /// The point joined this cluster (as core or border); no other
    /// label changed.
    Member(u32),
    /// The structure changed: the state is now stale and must be
    /// re-seeded from a batch run.
    Drift(DriftKind),
}

/// Running aggregate of one cluster, maintained so that emitted
/// summaries are bit-identical to the batch fold (members ascending).
#[derive(Debug, Clone)]
struct ClusterState {
    members: Vec<u32>,
    sum: Point,
    bbox: BoundingBox,
}

/// Persistent per-group clustering state supporting single-point
/// insertion with exact batch equivalence on the safe path.
#[derive(Debug, Clone)]
pub struct IncrementalDbscan {
    params: DbscanParams,
    cell: f64,
    points: Vec<Point>,
    /// `Eps`-sized grid buckets over `points` (indices).
    buckets: HashMap<(i64, i64), Vec<u32>>,
    /// `|N_Eps(p)|` including the point itself.
    counts: Vec<u32>,
    labels: Vec<Label>,
    clusters: Vec<ClusterState>,
    drift_events: u64,
    poisoned: bool,
}

impl IncrementalDbscan {
    /// Seeds the state from a batch DBSCAN run over `points`.
    pub fn seed(points: Vec<Point>, params: DbscanParams) -> Self {
        let cell = params.eps.max(f64::MIN_POSITIVE);
        let mut buckets: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            buckets
                .entry(Self::key_of(p, cell))
                .or_default()
                .push(i as u32);
        }
        let (labels, batch_clusters) = dbscan(&points, params);
        let clusters = batch_clusters
            .into_iter()
            .map(|c| {
                // Re-fold in the same ascending-member order the batch
                // summaries use, so later appends extend the very same
                // fold.
                let mut sum = Point::ORIGIN;
                let mut bbox: Option<BoundingBox> = None;
                for &m in &c.members {
                    let p = points[m as usize];
                    sum += p;
                    match &mut bbox {
                        None => bbox = Some(BoundingBox::from_point(p)),
                        Some(b) => b.expand(p),
                    }
                }
                ClusterState {
                    bbox: bbox.expect("batch clusters are non-empty"),
                    members: c.members,
                    sum,
                }
            })
            .collect();
        let mut state = IncrementalDbscan {
            params,
            cell,
            counts: Vec::with_capacity(points.len()),
            points,
            buckets,
            labels,
            clusters,
            drift_events: 0,
            poisoned: false,
        };
        let mut scratch = Vec::new();
        for i in 0..state.points.len() {
            let p = state.points[i];
            scratch.clear();
            state.neighbors_into(&p, &mut scratch);
            state.counts.push(scratch.len() as u32);
        }
        state
    }

    fn key_of(p: &Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Indices of existing points within `Eps` of `p` (any order).
    fn neighbors_into(&self, p: &Point, out: &mut Vec<u32>) {
        let (cx, cy) = Self::key_of(p, self.cell);
        let eps2 = self.params.eps * self.params.eps;
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.buckets.get(&(cx + dx, cy + dy)) {
                    for &i in bucket {
                        if self.points[i as usize].distance_sq(p) <= eps2 {
                            out.push(i);
                        }
                    }
                }
            }
        }
    }

    #[inline]
    fn is_core(&self, i: u32) -> bool {
        self.counts[i as usize] as usize >= self.params.min_pts
    }

    /// Inserts one point (appended at the highest index) and reports
    /// how it was absorbed. On [`InsertOutcome::Drift`] the state is
    /// *poisoned* — stale with respect to the inserted point — and only
    /// [`IncrementalDbscan::seed`] can produce a fresh one.
    ///
    /// # Panics
    /// Panics when called on a poisoned state.
    pub fn insert(&mut self, p: Point) -> InsertOutcome {
        assert!(!self.poisoned, "insert on a drifted IncrementalDbscan");
        let mut neighbors = Vec::new();
        self.neighbors_into(&p, &mut neighbors);

        // Any neighbour crossing the core threshold can re-route
        // borders, absorb noise, or merge clusters: bail out first.
        if neighbors
            .iter()
            .any(|&i| self.counts[i as usize] as usize + 1 == self.params.min_pts)
        {
            return self.drift(DriftKind::Promotion);
        }

        let count_q = neighbors.len() as u32 + 1; // neighbourhood includes self
        if count_q as usize >= self.params.min_pts {
            // The new point is core: it may only join a cluster whose
            // members already cover its whole neighbourhood.
            let mut target: Option<u32> = None;
            for &i in &neighbors {
                if !self.is_core(i) {
                    continue;
                }
                match (target, self.labels[i as usize]) {
                    (_, Label::Noise) => unreachable!("core points are always clustered"),
                    (None, Label::Cluster(c)) => target = Some(c),
                    (Some(t), Label::Cluster(c)) if c != t => return self.drift(DriftKind::Merge),
                    _ => {}
                }
            }
            let Some(c) = target else {
                return self.drift(DriftKind::NewCluster);
            };
            if neighbors
                .iter()
                .any(|&i| self.labels[i as usize] != Label::Cluster(c))
            {
                return self.drift(DriftKind::Absorption);
            }
            self.commit(p, &neighbors, Label::Cluster(c));
            InsertOutcome::Member(c)
        } else {
            // Border or noise: joins the lowest-id cluster with a core
            // neighbour — exactly the cluster the batch sweep (which
            // expands clusters in id order) would hand it to.
            let joined = neighbors
                .iter()
                .filter(|&&i| self.is_core(i))
                .filter_map(|&i| match self.labels[i as usize] {
                    Label::Cluster(c) => Some(c),
                    Label::Noise => None,
                })
                .min();
            match joined {
                Some(c) => {
                    self.commit(p, &neighbors, Label::Cluster(c));
                    InsertOutcome::Member(c)
                }
                None => {
                    self.commit(p, &neighbors, Label::Noise);
                    InsertOutcome::Noise
                }
            }
        }
    }

    /// Applies a safe insertion: appends the point, bumps neighbour
    /// counts, and extends the joined cluster's running fold.
    fn commit(&mut self, p: Point, neighbors: &[u32], label: Label) {
        let idx = self.points.len() as u32;
        for &i in neighbors {
            self.counts[i as usize] += 1;
        }
        self.counts.push(neighbors.len() as u32 + 1);
        self.points.push(p);
        self.buckets
            .entry(Self::key_of(&p, self.cell))
            .or_default()
            .push(idx);
        self.labels.push(label);
        if let Label::Cluster(c) = label {
            let cl = &mut self.clusters[c as usize];
            cl.members.push(idx);
            cl.sum += p;
            cl.bbox.expand(p);
        }
    }

    fn drift(&mut self, kind: DriftKind) -> InsertOutcome {
        self.drift_events += 1;
        self.poisoned = true;
        InsertOutcome::Drift(kind)
    }

    /// Number of points in the state.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the state holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of clusters.
    #[inline]
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Per-point labels, batch-identical on the safe path.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Structure-drift events observed so far (at most one per state:
    /// a drifted state is poisoned until re-seeded, so callers
    /// accumulate this across re-seeds).
    #[inline]
    pub fn drift_events(&self) -> u64 {
        self.drift_events
    }

    /// Whether a drift has poisoned this state.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Cluster summaries, bit-identical to what [`dbscan`] over the
    /// same point sequence returns (same fold order).
    pub fn clusters(&self) -> Vec<Cluster> {
        self.clusters
            .iter()
            .enumerate()
            .map(|(id, c)| Cluster {
                id: id as u32,
                members: c.members.clone(),
                centroid: c.sum / c.members.len() as f64,
                bbox: c.bbox,
            })
            .collect()
    }

    /// Summary of one cluster without allocating the members list:
    /// `(member count, centroid, bbox)`.
    pub fn cluster_summary(&self, id: u32) -> (usize, Point, BoundingBox) {
        let c = &self.clusters[id as usize];
        (c.members.len(), c.sum / c.members.len() as f64, c.bbox)
    }
}

impl MemUse for IncrementalDbscan {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + vec_cap_bytes(&self.points)
            + hashmap_bytes(&self.buckets)
            + self.buckets.values().map(vec_cap_bytes).sum::<usize>()
            + vec_cap_bytes(&self.counts)
            + vec_cap_bytes(&self.labels)
            + self.clusters.capacity() * std::mem::size_of::<ClusterState>()
            + self
                .clusters
                .iter()
                .map(|c| vec_cap_bytes(&c.members))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_blob(cx: f64, n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(cx + i as f64 * 0.01, 0.0))
            .collect()
    }

    fn params() -> DbscanParams {
        DbscanParams::new(1.0, 3)
    }

    #[test]
    fn seed_matches_batch() {
        let mut pts = dense_blob(0.0, 5);
        pts.extend(dense_blob(50.0, 4));
        pts.push(Point::new(25.0, 25.0));
        let state = IncrementalDbscan::seed(pts.clone(), params());
        let (labels, clusters) = dbscan(&pts, params());
        assert_eq!(state.labels(), &labels[..]);
        assert_eq!(state.clusters(), clusters);
    }

    #[test]
    fn safe_core_join_matches_batch() {
        let mut pts = dense_blob(0.0, 5);
        pts.extend(dense_blob(50.0, 4));
        let mut state = IncrementalDbscan::seed(pts.clone(), params());
        // Inside the first blob: all neighbours are blob-0 members.
        let p = Point::new(0.02, 0.0);
        assert_eq!(state.insert(p), InsertOutcome::Member(0));
        pts.push(p);
        let (labels, clusters) = dbscan(&pts, params());
        assert_eq!(state.labels(), &labels[..]);
        assert_eq!(state.clusters(), clusters);
    }

    #[test]
    fn far_point_is_noise() {
        let mut state = IncrementalDbscan::seed(dense_blob(0.0, 5), params());
        assert_eq!(state.insert(Point::new(100.0, 100.0)), InsertOutcome::Noise);
        assert_eq!(state.cluster_count(), 1);
        assert_eq!(*state.labels().last().unwrap(), Label::Noise);
    }

    #[test]
    fn second_blob_appearing_reports_drift() {
        // Two isolated points, then a third making them dense: the
        // closing point first promotes its neighbours.
        let mut pts = dense_blob(0.0, 5);
        pts.push(Point::new(50.0, 0.0));
        pts.push(Point::new(50.3, 0.0));
        let mut state = IncrementalDbscan::seed(pts, params());
        let out = state.insert(Point::new(50.6, 0.0));
        assert_eq!(out, InsertOutcome::Drift(DriftKind::Promotion));
        assert!(state.is_poisoned());
        assert_eq!(state.drift_events(), 1);
    }

    #[test]
    fn isolated_core_reports_new_cluster_drift() {
        // min_pts = 1: every point is core on arrival.
        let p = DbscanParams::new(1.0, 1);
        let mut state = IncrementalDbscan::seed(vec![Point::new(0.0, 0.0)], p);
        assert_eq!(
            state.insert(Point::new(10.0, 0.0)),
            InsertOutcome::Drift(DriftKind::NewCluster)
        );
    }

    #[test]
    fn bridging_point_reports_merge_or_absorption() {
        // Two dense blobs 2.4 apart; a point in between reaches cores
        // of both.
        let mut pts: Vec<Point> = (0..4).map(|i| Point::new(i as f64 * 0.01, 0.0)).collect();
        pts.extend((0..4).map(|i| Point::new(1.6 + i as f64 * 0.01, 0.0)));
        let mut state = IncrementalDbscan::seed(pts, params());
        assert_eq!(state.cluster_count(), 2);
        match state.insert(Point::new(0.8, 0.0)) {
            InsertOutcome::Drift(DriftKind::Merge | DriftKind::Promotion) => {}
            other => panic!("expected merge-ish drift, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "drifted")]
    fn poisoned_state_rejects_inserts() {
        let p = DbscanParams::new(1.0, 1);
        let mut state = IncrementalDbscan::seed(vec![Point::new(0.0, 0.0)], p);
        let _ = state.insert(Point::new(10.0, 0.0));
        let _ = state.insert(Point::new(20.0, 0.0));
    }
}
