//! DBSCAN density-based clustering (Ester, Kriegel, Sander, Xu —
//! SIGKDD 1996), the algorithm the paper uses to find *frequent
//! regions* in each per-offset group `Gₜ` (§IV).
//!
//! `Eps` and `MinPts` play the role that *support* plays in frequent
//! item-set mining: a location is dense (a *core point*) when at least
//! `MinPts` locations fall within distance `Eps` of it, and clusters
//! grow transitively from core points.
//!
//! Neighbourhood queries use a uniform grid with `Eps`-sized cells
//! ([`GridIndex`]), giving the expected `O(n · k)` behaviour instead of
//! the naive `O(n²)` scan (a naive variant is kept for the ablation
//! bench and as a differential-testing oracle).

//! # Example
//!
//! ```
//! use hpm_clustering::{dbscan, DbscanParams, Label};
//! use hpm_geo::Point;
//!
//! // Two tight groups of 4 points and one straggler.
//! let mut pts: Vec<Point> = (0..4).map(|i| Point::new(i as f64 * 0.1, 0.0)).collect();
//! pts.extend((0..4).map(|i| Point::new(50.0 + i as f64 * 0.1, 0.0)));
//! pts.push(Point::new(25.0, 25.0));
//!
//! let (labels, clusters) = dbscan(&pts, DbscanParams::new(1.0, 3));
//! assert_eq!(clusters.len(), 2);
//! assert_eq!(labels[8], Label::Noise);
//! ```

mod dbscan;
mod grid;
mod incremental;

pub use dbscan::{dbscan, dbscan_naive, Cluster, DbscanParams, Label};
pub use grid::GridIndex;
pub use incremental::{DriftKind, IncrementalDbscan, InsertOutcome};
