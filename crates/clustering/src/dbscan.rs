//! The DBSCAN algorithm proper.

use crate::GridIndex;
use hpm_geo::{BoundingBox, Point};

/// DBSCAN parameters: the paper's frequent-region knobs (§IV, §VII.B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Maximum neighbour distance (`Eps`).
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a
    /// core point (`MinPts`).
    pub min_pts: usize,
}

impl DbscanParams {
    /// Convenience constructor.
    ///
    /// # Panics
    /// Panics when `eps` is not positive/finite or `min_pts == 0`.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive");
        assert!(min_pts > 0, "min_pts must be positive");
        DbscanParams { eps, min_pts }
    }
}

/// Per-point cluster assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// Sparse point belonging to no cluster.
    Noise,
    /// Member of the cluster with this id (0-based, dense ids).
    Cluster(u32),
}

/// A discovered dense cluster, summarised for frequent-region use.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Dense 0-based id, consistent with [`Label::Cluster`].
    pub id: u32,
    /// Indices into the input point slice.
    pub members: Vec<u32>,
    /// Arithmetic mean of the members.
    pub centroid: Point,
    /// Tight bounding box of the members.
    pub bbox: BoundingBox,
}

/// Runs DBSCAN over `points`, returning per-point labels and the
/// cluster summaries.
///
/// Border points are assigned to the cluster of the first core point
/// that reaches them (classic DBSCAN order-dependence; the expansion
/// order here is by ascending seed index, so results are
/// deterministic).
pub fn dbscan(points: &[Point], params: DbscanParams) -> (Vec<Label>, Vec<Cluster>) {
    let index = GridIndex::build(points, params.eps.max(f64::MIN_POSITIVE));
    dbscan_impl(points, params, |p, visit| {
        index.for_each_neighbor(p, params.eps, visit)
    })
}

/// Naive `O(n²)` DBSCAN — differential-testing oracle and ablation
/// baseline for the grid index.
pub fn dbscan_naive(points: &[Point], params: DbscanParams) -> (Vec<Label>, Vec<Cluster>) {
    let eps2 = params.eps * params.eps;
    dbscan_impl(points, params, |p, visit| {
        for (i, q) in points.iter().enumerate() {
            if q.distance_sq(p) <= eps2 {
                visit(i as u32);
            }
        }
    })
}

/// `UNCLASSIFIED` sentinel used during the sweep.
const UNVISITED: u32 = u32::MAX;
/// Noise sentinel (may later be upgraded to a border point).
const NOISE: u32 = u32::MAX - 1;

fn dbscan_impl(
    points: &[Point],
    params: DbscanParams,
    neighbors_of: impl Fn(&Point, &mut dyn FnMut(u32)),
) -> (Vec<Label>, Vec<Cluster>) {
    let n = points.len();
    let mut assign = vec![UNVISITED; n];
    let mut next_cluster = 0u32;
    let mut frontier: Vec<u32> = Vec::new();
    let mut scratch: Vec<u32> = Vec::new();

    for seed in 0..n {
        if assign[seed] != UNVISITED {
            continue;
        }
        scratch.clear();
        neighbors_of(&points[seed], &mut |i| scratch.push(i));
        if scratch.len() < params.min_pts {
            assign[seed] = NOISE;
            continue;
        }
        // New cluster seeded at a core point; expand breadth-first.
        let cid = next_cluster;
        next_cluster += 1;
        assign[seed] = cid;
        frontier.clear();
        for &i in &scratch {
            let a = &mut assign[i as usize];
            if *a == UNVISITED || *a == NOISE {
                let was_unvisited = *a == UNVISITED;
                *a = cid;
                if was_unvisited {
                    frontier.push(i);
                }
            }
        }
        while let Some(p) = frontier.pop() {
            scratch.clear();
            neighbors_of(&points[p as usize], &mut |i| scratch.push(i));
            if scratch.len() < params.min_pts {
                continue; // border point: keeps membership, no expansion
            }
            for &i in &scratch {
                let a = &mut assign[i as usize];
                if *a == UNVISITED {
                    *a = cid;
                    frontier.push(i);
                } else if *a == NOISE {
                    *a = cid; // border point claimed by this cluster
                }
            }
        }
    }

    // Summaries.
    let mut clusters: Vec<Cluster> = (0..next_cluster)
        .map(|id| Cluster {
            id,
            members: Vec::new(),
            centroid: Point::ORIGIN,
            bbox: BoundingBox::from_point(Point::ORIGIN),
        })
        .collect();
    for (i, &a) in assign.iter().enumerate() {
        if a < NOISE {
            clusters[a as usize].members.push(i as u32);
        }
    }
    for cl in &mut clusters {
        debug_assert!(!cl.members.is_empty());
        let pts: Vec<Point> = cl.members.iter().map(|&i| points[i as usize]).collect();
        cl.centroid = hpm_geo::Point::ORIGIN;
        for p in &pts {
            cl.centroid += *p;
        }
        cl.centroid = cl.centroid / pts.len() as f64;
        cl.bbox = BoundingBox::from_points(&pts).expect("non-empty cluster");
    }

    let labels = assign
        .iter()
        .map(|&a| {
            if a < NOISE {
                Label::Cluster(a)
            } else {
                Label::Noise
            }
        })
        .collect();
    (labels, clusters)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Point> {
        // Deterministic pseudo-random-ish blob on a small spiral.
        (0..n)
            .map(|i| {
                let a = i as f64 * 2.399963; // golden angle
                let r = spread * (i as f64 / n as f64).sqrt();
                Point::new(cx + r * a.cos(), cy + r * a.sin())
            })
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut pts = blob(0.0, 0.0, 30, 1.0);
        pts.extend(blob(100.0, 100.0, 30, 1.0));
        let (labels, clusters) = dbscan(&pts, DbscanParams::new(1.0, 4));
        assert_eq!(clusters.len(), 2);
        // All points clustered (dense blobs, no noise).
        assert!(labels.iter().all(|l| matches!(l, Label::Cluster(_))));
        // Points of the same blob share a label.
        assert!(labels[..30].iter().all(|l| *l == labels[0]));
        assert!(labels[30..].iter().all(|l| *l == labels[30]));
        assert_ne!(labels[0], labels[30]);
    }

    #[test]
    fn isolated_points_are_noise() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(0.0, 50.0),
        ];
        let (labels, clusters) = dbscan(&pts, DbscanParams::new(1.0, 2));
        assert!(clusters.is_empty());
        assert!(labels.iter().all(|l| *l == Label::Noise));
    }

    #[test]
    fn min_pts_includes_self() {
        // Two points within eps: neighbourhood size 2 each.
        let pts = [Point::new(0.0, 0.0), Point::new(0.5, 0.0)];
        let (_, c2) = dbscan(&pts, DbscanParams::new(1.0, 2));
        assert_eq!(c2.len(), 1);
        let (_, c3) = dbscan(&pts, DbscanParams::new(1.0, 3));
        assert!(c3.is_empty());
    }

    #[test]
    fn border_point_joins_cluster() {
        // A chain: p0..p3 dense, p4 only reachable from p3 (border).
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(0.4, 0.0),
            Point::new(0.8, 0.0),
            Point::new(1.2, 0.0),
            Point::new(2.1, 0.0),
        ];
        let (labels, clusters) = dbscan(&pts, DbscanParams::new(1.0, 3));
        assert_eq!(clusters.len(), 1);
        assert_eq!(labels[4], Label::Cluster(0));
    }

    #[test]
    fn cluster_summary_fields() {
        let pts = blob(10.0, 20.0, 40, 0.5);
        let (_, clusters) = dbscan(&pts, DbscanParams::new(0.5, 3));
        assert_eq!(clusters.len(), 1);
        let c = &clusters[0];
        assert_eq!(c.members.len(), 40);
        assert!(c.centroid.distance(&Point::new(10.0, 20.0)) < 0.2);
        for &m in &c.members {
            assert!(c.bbox.contains(&pts[m as usize]));
        }
    }

    #[test]
    fn grid_matches_naive() {
        let mut pts = blob(0.0, 0.0, 25, 2.0);
        pts.extend(blob(6.0, 1.0, 25, 2.0));
        pts.push(Point::new(-30.0, -30.0));
        let params = DbscanParams::new(1.2, 4);
        let (l1, c1) = dbscan(&pts, params);
        let (l2, c2) = dbscan_naive(&pts, params);
        assert_eq!(l1, l2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn empty_input() {
        let (labels, clusters) = dbscan(&[], DbscanParams::new(1.0, 3));
        assert!(labels.is_empty());
        assert!(clusters.is_empty());
    }

    #[test]
    fn labels_consistent_with_members() {
        let pts = blob(0.0, 0.0, 20, 1.0);
        let (labels, clusters) = dbscan(&pts, DbscanParams::new(1.0, 4));
        for c in &clusters {
            for &m in &c.members {
                assert_eq!(labels[m as usize], Label::Cluster(c.id));
            }
        }
    }
}
