//! Property-based invariants for DBSCAN.

use hpm_check::prelude::*;
use hpm_clustering::{dbscan, dbscan_naive, DbscanParams, IncrementalDbscan, InsertOutcome, Label};
use hpm_geo::Point;

fn arb_points() -> Gen<Vec<Point>> {
    vec(
        tuple((float(-50.0..50.0), float(-50.0..50.0))).map(|(x, y)| Point::new(x, y)),
        0..80,
    )
}

fn arb_params() -> Gen<DbscanParams> {
    tuple((float(0.5..8.0), int(2usize..6))).map(|(eps, min_pts)| DbscanParams::new(eps, min_pts))
}

props! {
    /// The grid-indexed implementation is exactly equivalent to the
    /// naive O(n²) oracle.
    fn grid_equals_naive(pts in arb_points(), params in arb_params()) {
        let (l1, c1) = dbscan(&pts, params);
        let (l2, c2) = dbscan_naive(&pts, params);
        require_eq!(l1, l2);
        require_eq!(c1, c2);
    }

    /// Every cluster contains at least one core point — a member with
    /// at least MinPts dataset neighbours within eps. (The cluster
    /// itself can hold *fewer* than MinPts members: border points in a
    /// core point's neighbourhood may already have been claimed by an
    /// earlier cluster, the classic DBSCAN order-dependence — a
    /// counterexample found by this suite's earlier, stricter version.)
    fn clusters_have_a_core_point(pts in arb_points(), params in arb_params()) {
        let (_, clusters) = dbscan(&pts, params);
        let eps2 = params.eps * params.eps;
        for c in &clusters {
            let has_core = c.members.iter().any(|&m| {
                pts.iter()
                    .filter(|q| q.distance_sq(&pts[m as usize]) <= eps2)
                    .count()
                    >= params.min_pts
            });
            require!(has_core, "cluster {:?} has no core point", c.members);
        }
    }

    /// Labels partition the points: member lists are disjoint,
    /// cover exactly the clustered points, and ids are dense.
    fn partition_invariants(pts in arb_points(), params in arb_params()) {
        let (labels, clusters) = dbscan(&pts, params);
        let mut seen = vec![false; pts.len()];
        for (cid, c) in clusters.iter().enumerate() {
            require_eq!(c.id as usize, cid);
            for &m in &c.members {
                require!(!seen[m as usize], "point in two clusters");
                seen[m as usize] = true;
                require_eq!(labels[m as usize], Label::Cluster(c.id));
            }
        }
        for (i, s) in seen.iter().enumerate() {
            if !s {
                require_eq!(labels[i], Label::Noise);
            }
        }
    }

    /// Cluster geometry: centroid and all members inside the bbox.
    fn summaries_are_tight(pts in arb_points(), params in arb_params()) {
        let (_, clusters) = dbscan(&pts, params);
        for c in &clusters {
            require!(c.bbox.contains_within(&c.centroid, 1e-9));
            for &m in &c.members {
                require!(c.bbox.contains(&pts[m as usize]));
            }
        }
    }

    /// Noise points really are sparse: a noise point has fewer than
    /// MinPts neighbours (it can never be a core point).
    fn noise_is_never_core(pts in arb_points(), params in arb_params()) {
        let (labels, _) = dbscan(&pts, params);
        let eps2 = params.eps * params.eps;
        for (i, l) in labels.iter().enumerate() {
            if *l == Label::Noise {
                let n = pts.iter().filter(|q| q.distance_sq(&pts[i]) <= eps2).count();
                require!(n < params.min_pts);
            }
        }
    }

    // Incremental insertion with reseed-on-drift is *exactly* the
    // batch algorithm at every prefix: after each insert (or fallback
    // reseed) the labels and summaries equal a fresh batch run over
    // the same point sequence. This simultaneously checks that the
    // safe path changes nothing it should not, and that every
    // structure-changing insertion is caught as drift.
    #[cases(96)]
    fn incremental_equals_batch_at_every_prefix(
        pts in arb_points(),
        params in arb_params(),
        split in float(0.0..1.0),
    ) {
        let cut = (pts.len() as f64 * split) as usize;
        let mut state = IncrementalDbscan::seed(pts[..cut].to_vec(), params);
        for (extra, &p) in pts[cut..].iter().enumerate() {
            let n = cut + extra + 1;
            if let InsertOutcome::Drift(_) = state.insert(p) {
                require!(state.is_poisoned());
                state = IncrementalDbscan::seed(pts[..n].to_vec(), params);
            }
            let (labels, clusters) = dbscan(&pts[..n], params);
            require_eq!(state.labels(), &labels[..]);
            require_eq!(state.clusters(), clusters);
        }
    }
}
