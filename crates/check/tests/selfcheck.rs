//! End-to-end checks of the `props!` macro surface from an external
//! crate, the way the workspace test suites consume it.

use hpm_check::prelude::*;

props! {
    fn addition_commutes(a in int(-1_000i64..1_000), b in int(-1_000i64..1_000)) {
        require_eq!(a + b, b + a);
    }

    fn sort_is_idempotent(mut v in vec(int(0u32..100), 0..32)) {
        v.sort_unstable();
        let once = v.clone();
        v.sort_unstable();
        require_eq!(v, once);
    }

    fn floats_stay_in_range(x in float(-4.0..4.0)) {
        require!((-4.0..4.0).contains(&x), "{x} escaped the range");
    }

    fn assume_filters_without_failing(n in int(0u32..100)) {
        assume!(n % 3 == 0);
        require_eq!(n % 3, 0);
    }

    fn index_addresses_collection(v in vec(int(0u8..=255), 1..20), ix in index()) {
        let picked = v[ix.index(v.len())];
        require!(v.contains(&picked));
    }

    fn choice_yields_known_value(w in choice(vec![1u32, 5, 9])) {
        require!(w == 1 || w == 5 || w == 9);
        require_ne!(w, 0);
    }

    #[cases(128)]
    fn case_floor_attribute_compiles(x in int(0u8..=255), tag in just("fixed")) {
        require_eq!(tag, "fixed");
        let _ = x;
    }
}

// Plain #[test]s can sit next to props! blocks in the same file.
#[test]
fn failing_property_panics_with_minimal_case() {
    let result = std::panic::catch_unwind(|| {
        hpm_check::Runner::new(env!("CARGO_MANIFEST_DIR"), file!(), "external_shrink")
            .no_persist()
            .run(hpm_check::int(0u32..10_000), |&v| {
                if v < 128 {
                    Ok(())
                } else {
                    Err(hpm_check::CaseError::Fail("too big".into()))
                }
            });
    });
    let msg = *result.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains(": 128"), "expected shrink to 128, got: {msg}");
}

#[test]
fn library_panics_are_caught_and_shrunk() {
    let result = std::panic::catch_unwind(|| {
        hpm_check::Runner::new(env!("CARGO_MANIFEST_DIR"), file!(), "external_panic")
            .no_persist()
            .run(hpm_check::vec(hpm_check::int(0u32..100), 0..20), |v| {
                // An out-of-bounds index panics instead of returning Fail.
                if v.len() >= 3 {
                    let _ = v[v.len() + 1];
                }
                Ok(())
            });
    });
    let msg = *result.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("panic"), "{msg}");
}
