//! Lazy shrink trees.
//!
//! A generated value carries a lazily computed list of *smaller*
//! candidate values, each itself a tree — the hedgehog-style
//! "integrated shrinking" representation. `map`/`zip` preserve
//! shrinkability through combinators, so test authors never write a
//! shrinker by hand.

use std::rc::Rc;

/// A value plus its lazily computed shrink candidates, ordered most
/// aggressive first (the greedy shrinker takes the first candidate
/// that still fails).
#[derive(Clone)]
pub struct Tree<T> {
    /// The generated value.
    pub value: T,
    children: Rc<dyn Fn() -> Vec<Tree<T>>>,
}

impl<T: Clone + 'static> Tree<T> {
    /// A leaf: no shrink candidates.
    pub fn leaf(value: T) -> Self {
        Tree {
            value,
            children: Rc::new(Vec::new),
        }
    }

    /// A tree with an explicit lazy candidate list.
    pub fn with_children(value: T, children: impl Fn() -> Vec<Tree<T>> + 'static) -> Self {
        Tree {
            value,
            children: Rc::new(children),
        }
    }

    /// Forces the candidate list.
    pub fn children(&self) -> Vec<Tree<T>> {
        (self.children)()
    }

    /// Maps the whole tree through `f`, preserving shrink structure.
    pub fn map<U: Clone + 'static>(&self, f: Rc<dyn Fn(T) -> U>) -> Tree<U> {
        let value = f(self.value.clone());
        let this = self.clone();
        Tree {
            value,
            children: Rc::new(move || {
                this.children()
                    .iter()
                    .map(|c| c.map(Rc::clone(&f)))
                    .collect()
            }),
        }
    }

    /// Pairs two trees: candidates shrink one side at a time, left
    /// first, while the other side keeps its own (still shrinkable)
    /// tree.
    pub fn zip<U: Clone + 'static>(&self, other: &Tree<U>) -> Tree<(T, U)> {
        let value = (self.value.clone(), other.value.clone());
        let a = self.clone();
        let b = other.clone();
        Tree {
            value,
            children: Rc::new(move || {
                let mut out = Vec::new();
                for ca in a.children() {
                    out.push(ca.zip(&b));
                }
                for cb in b.children() {
                    out.push(a.zip(&cb));
                }
                out
            }),
        }
    }
}

/// Builds the tree of a generated vector from its element trees.
///
/// Candidates, most aggressive first: drop the whole tail down to
/// `min_len`, drop the first/second half, drop each single element,
/// then shrink each element in place.
pub fn vec_tree<T: Clone + 'static>(elements: Vec<Tree<T>>, min_len: usize) -> Tree<Vec<T>> {
    let value: Vec<T> = elements.iter().map(|t| t.value.clone()).collect();
    Tree {
        value,
        children: Rc::new(move || {
            let n = elements.len();
            let mut out: Vec<Tree<Vec<T>>> = Vec::new();
            let keep = |idxs: Vec<usize>| {
                vec_tree(idxs.iter().map(|&i| elements[i].clone()).collect(), min_len)
            };
            // Truncate hard: down to min_len, then to half.
            if n > min_len {
                out.push(keep((0..min_len).collect()));
                let half = (n / 2).max(min_len);
                if half < n && half > min_len {
                    out.push(keep((0..half).collect()));
                }
                // Drop the first half (failures hiding in the tail).
                let from = (n - half).min(n - min_len);
                if from > 0 {
                    out.push(keep((from..n).collect()));
                }
                // Drop each single element.
                for skip in 0..n {
                    out.push(keep((0..n).filter(|&i| i != skip).collect()));
                }
            }
            // Shrink each element in place.
            for (i, el) in elements.iter().enumerate() {
                for child in el.children() {
                    let mut es = elements.clone();
                    es[i] = child;
                    out.push(vec_tree(es, min_len));
                }
            }
            out
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::shrink_i128;

    fn int_tree(origin: i128, current: i128) -> Tree<i128> {
        Tree::with_children(current, move || {
            shrink_i128(origin, current)
                .into_iter()
                .map(|c| int_tree(origin, c))
                .collect()
        })
    }

    #[test]
    fn leaf_has_no_children() {
        assert!(Tree::leaf(7).children().is_empty());
    }

    #[test]
    fn map_preserves_candidates() {
        let t = int_tree(0, 8).map(Rc::new(|v| v * 10));
        assert_eq!(t.value, 80);
        let kids: Vec<i128> = t.children().iter().map(|c| c.value).collect();
        assert!(kids.contains(&0));
        assert!(kids.iter().all(|v| v % 10 == 0));
    }

    #[test]
    fn zip_shrinks_one_side_at_a_time() {
        let t = int_tree(0, 4).zip(&int_tree(0, 6));
        assert_eq!(t.value, (4, 6));
        for c in t.children() {
            let (a, b) = c.value;
            assert!((a == 4) ^ (b == 6), "{:?} changed both sides", c.value);
        }
    }

    #[test]
    fn vec_candidates_respect_min_len() {
        let es: Vec<Tree<i128>> = (0..6).map(|v| int_tree(0, v)).collect();
        let t = vec_tree(es, 2);
        assert_eq!(t.value, vec![0, 1, 2, 3, 4, 5]);
        for c in t.children() {
            assert!(c.value.len() >= 2, "{:?}", c.value);
        }
    }

    #[test]
    fn vec_single_removals_present() {
        let es: Vec<Tree<i128>> = (0..4).map(|v| int_tree(0, v)).collect();
        let t = vec_tree(es, 0);
        let kids: Vec<Vec<i128>> = t.children().iter().map(|c| c.value.clone()).collect();
        assert!(kids.contains(&vec![1, 2, 3]));
        assert!(kids.contains(&vec![0, 2, 3]));
        assert!(kids.contains(&vec![0, 1, 3]));
        assert!(kids.contains(&vec![0, 1, 2]));
    }
}
