//! Failpoints: deterministic fault injection for durability tests.
//!
//! A failpoint names an I/O site (e.g. `wal.append`) and an action to
//! take once a cumulative byte threshold is reached. Production code
//! routes its physical writes through [`on_write`]; with no failpoint
//! armed the call is a couple of atomic loads, so leaving the hook in
//! release builds costs nothing measurable.
//!
//! Failpoints are armed either programmatically ([`install`]) or from
//! the `HPM_FAILPOINT` environment variable, which lets a test harness
//! crash a *child process* mid-write and then recover its on-disk
//! state from the parent:
//!
//! ```text
//! HPM_FAILPOINT=<point>=<action>@<bytes>
//!
//! wal.append=torn@4096    tear the write crossing cumulative byte
//!                         4096 (partial bytes hit the file) and exit
//!                         with EXIT_CODE
//! wal.append=short@4096   silently drop the tail of that write once,
//!                         then keep going (a lying disk)
//! wal.append=exit@4096    exit with EXIT_CODE instead of performing
//!                         the write that would pass cumulative byte
//!                         4096 (a clean write-boundary crash)
//! ```
//!
//! The byte counter accumulates over every write through the matching
//! point, so a threshold addresses an exact prefix of the byte stream
//! regardless of how writes are batched. Each armed failpoint fires at
//! most once.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Exit code a torn/exit failpoint terminates the process with —
/// distinguishable from both success and a panic (101).
pub const EXIT_CODE: i32 = 86;

/// What to do when the byte threshold is crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Write a partial prefix of the crossing write, then exit.
    Torn,
    /// Write a partial prefix, report success, keep running.
    Short,
    /// Exit cleanly before the crossing write touches the file.
    Exit,
}

#[derive(Debug, Clone)]
struct Failpoint {
    point: String,
    action: FailAction,
    /// Cumulative byte threshold the action fires at.
    at: u64,
    /// Bytes already written through the matching point.
    written: u64,
    fired: bool,
}

/// What the caller should do with one physical write of `len` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Write the whole buffer.
    Full,
    /// Write only the first `n` bytes, then `process::exit(EXIT_CODE)`.
    TornExit(usize),
    /// Write only the first `n` bytes and report success.
    Short(usize),
    /// Write nothing and `process::exit(EXIT_CODE)`.
    ExitNow,
}

/// `true` while any failpoint is armed — lets [`on_write`] stay a
/// couple of atomic loads on the hot path.
static ARMED: AtomicBool = AtomicBool::new(false);

/// `true` once `HPM_FAILPOINT` has been consulted, so the unarmed
/// fast path can skip [`active`]'s lock forever after.
static ENV_CHECKED: AtomicBool = AtomicBool::new(false);

fn active() -> &'static Mutex<Option<Failpoint>> {
    static ACTIVE: OnceLock<Mutex<Option<Failpoint>>> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        let from_env = std::env::var("HPM_FAILPOINT")
            .ok()
            .and_then(|spec| parse(&spec).ok());
        if from_env.is_some() {
            ARMED.store(true, Ordering::Release);
        }
        Mutex::new(from_env)
    })
}

fn parse(spec: &str) -> Result<Failpoint, String> {
    let (point, rest) = spec
        .split_once('=')
        .ok_or_else(|| format!("failpoint spec `{spec}` missing `=`"))?;
    let (action, at) = rest
        .split_once('@')
        .ok_or_else(|| format!("failpoint spec `{spec}` missing `@<bytes>`"))?;
    let action = match action {
        "torn" => FailAction::Torn,
        "short" => FailAction::Short,
        "exit" => FailAction::Exit,
        other => return Err(format!("unknown failpoint action `{other}`")),
    };
    let at: u64 = at
        .parse()
        .map_err(|_| format!("failpoint threshold `{at}` is not a byte count"))?;
    Ok(Failpoint {
        point: point.to_string(),
        action,
        at,
        written: 0,
        fired: false,
    })
}

/// Arms a failpoint from a `point=action@bytes` spec, replacing any
/// previous one (from the environment included) and resetting the byte
/// counter. Process-global: tests sharing a process must not overlap
/// arming windows with unrelated WAL writers.
pub fn install(spec: &str) -> Result<(), String> {
    let fp = parse(spec)?;
    let mut active = active().lock().unwrap_or_else(PoisonError::into_inner);
    *active = Some(fp);
    ARMED.store(true, Ordering::Release);
    Ok(())
}

/// Disarms any armed failpoint.
pub fn clear() {
    let mut active = active().lock().unwrap_or_else(PoisonError::into_inner);
    *active = None;
    ARMED.store(false, Ordering::Release);
}

/// Consults the armed failpoint (if any) about a physical write of
/// `len` bytes through `point`. The caller must honour the outcome:
/// write the indicated prefix, and exit with [`EXIT_CODE`] on
/// [`WriteOutcome::TornExit`] / [`WriteOutcome::ExitNow`] *after*
/// flushing the partial bytes to the file.
pub fn on_write(point: &str, len: usize) -> WriteOutcome {
    // The first call must reach `active()` even while unarmed: that is
    // what parses `HPM_FAILPOINT` and arms an env-specified failpoint.
    if !ARMED.load(Ordering::Acquire) && ENV_CHECKED.load(Ordering::Acquire) {
        return WriteOutcome::Full;
    }
    let mut guard = active().lock().unwrap_or_else(PoisonError::into_inner);
    ENV_CHECKED.store(true, Ordering::Release);
    let Some(fp) = guard.as_mut() else {
        return WriteOutcome::Full;
    };
    if fp.fired || fp.point != point {
        return WriteOutcome::Full;
    }
    let before = fp.written;
    fp.written = before + len as u64;
    if fp.written <= fp.at {
        // Threshold not reached yet (firing exactly *at* the limit
        // would tear zero bytes of the next write instead).
        return WriteOutcome::Full;
    }
    fp.fired = true;
    let keep = (fp.at.saturating_sub(before)) as usize;
    match fp.action {
        FailAction::Torn => WriteOutcome::TornExit(keep),
        FailAction::Short => WriteOutcome::Short(keep),
        // The crossing write never touches the file: the file holds
        // exactly the writes that fit under the threshold — a crash at
        // a clean write boundary.
        FailAction::Exit => WriteOutcome::ExitNow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_is_full() {
        clear();
        assert_eq!(on_write("wal.append", 100), WriteOutcome::Full);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(parse("wal.append").is_err());
        assert!(parse("wal.append=torn").is_err());
        assert!(parse("wal.append=explode@5").is_err());
        assert!(parse("wal.append=torn@lots").is_err());
        assert!(parse("wal.append=torn@5").is_ok());
    }

    #[test]
    fn torn_fires_once_at_cumulative_threshold() {
        install("p=torn@25").unwrap();
        assert_eq!(on_write("other", 100), WriteOutcome::Full);
        assert_eq!(on_write("p", 10), WriteOutcome::Full);
        assert_eq!(on_write("p", 10), WriteOutcome::Full);
        // 20 written, threshold 25: this write tears after 5 bytes.
        assert_eq!(on_write("p", 10), WriteOutcome::TornExit(5));
        // Already fired.
        assert_eq!(on_write("p", 10), WriteOutcome::Full);
        clear();
    }

    #[test]
    fn exit_fires_at_a_write_boundary() {
        install("p=exit@15").unwrap();
        assert_eq!(on_write("p", 10), WriteOutcome::Full);
        // The write crossing byte 15 never lands: clean boundary.
        assert_eq!(on_write("p", 10), WriteOutcome::ExitNow);
        clear();
    }

    #[test]
    fn short_keeps_prefix() {
        install("p=short@3").unwrap();
        assert_eq!(on_write("p", 10), WriteOutcome::Short(3));
        assert_eq!(on_write("p", 10), WriteOutcome::Full);
        clear();
    }

    #[test]
    fn exact_boundary_tears_next_write_at_zero() {
        install("p=torn@10").unwrap();
        assert_eq!(on_write("p", 10), WriteOutcome::Full);
        assert_eq!(on_write("p", 10), WriteOutcome::TornExit(0));
        clear();
    }
}
