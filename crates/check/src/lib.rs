//! # hpm-check — deterministic std-only property testing
//!
//! A minimal in-tree replacement for the slice of `proptest` this
//! workspace used, so the build stays hermetic (zero registry
//! dependencies). Properties are written with the [`props!`] macro:
//!
//! ```
//! use hpm_check::prelude::*;
//!
//! props! {
//!     fn doubling_is_even(x in int(0u32..1_000)) {
//!         require_eq!((x * 2) % 2, 0);
//!     }
//! }
//! ```
//!
//! Each property runs a fixed number of deterministic cases (default
//! 64) seeded from the property name, so suites are reproducible and
//! independent of test ordering. On failure the input is greedily
//! shrunk via hedgehog-style integrated shrink trees and the failing
//! seed is appended to a `<test-file-stem>.proptest-regressions` file
//! next to the test source — the same location and `cc <hex>` line
//! format `proptest` used, so seeds persisted by earlier `proptest`
//! runs keep replaying.
//!
//! Environment knobs:
//!
//! | variable            | default | meaning                              |
//! |---------------------|---------|--------------------------------------|
//! | `HPM_CHECK_CASES`   | 64      | cases per property                   |
//! | `HPM_CHECK_SEED`    | fixed   | master seed (decimal or `0x…` hex)   |
//! | `HPM_CHECK_SHRINKS` | 2048    | shrink-candidate evaluation budget   |
//! | `HPM_CHECK_PERSIST` | 1       | write new failure seeds (`0` = off)  |

pub mod alloc;
pub mod fail;
pub mod gen;
pub mod runner;
pub mod tree;

pub use gen::{choice, float, index, int, just, tuple, vec, Gen, Index};
pub use runner::{Config, Runner};
pub use tree::Tree;

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseError {
    /// Input rejected by [`assume!`]; the case is retried with fresh
    /// input and does not count towards the case budget.
    Discard,
    /// The property is violated; the message describes how.
    Fail(String),
}

/// Result type of one property evaluation.
pub type CaseResult = Result<(), CaseError>;

/// One-stop imports for property-test files.
pub mod prelude {
    pub use crate::gen::{choice, float, index, int, just, tuple, vec, Gen, Index};
    pub use crate::{assume, props, require, require_eq, require_ne};
    pub use crate::{CaseError, CaseResult};
}

/// Defines `#[test]` functions that each check a property over many
/// generated inputs.
///
/// Syntax per property (several may share one block):
///
/// ```text
/// #[cases(128)]              // optional: raise the case floor
/// fn name(pat in generator, pat2 in generator2) { body }
/// ```
///
/// The body uses [`require!`]/[`require_eq!`]/[`require_ne!`] to state
/// the property and [`assume!`] to discard unsuitable inputs; plain
/// panics (e.g. library `assert!`s) are caught and shrunk too.
#[macro_export]
macro_rules! props {
    () => {};
    (
        #[cases($min_cases:expr)]
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $gen:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $crate::props! {
            @one ($min_cases)
            $(#[$meta])*
            fn $name($($arg in $gen),+) $body
        }
        $crate::props!{$($rest)*}
    };
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $gen:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $crate::props! {
            @one (1)
            $(#[$meta])*
            fn $name($($arg in $gen),+) $body
        }
        $crate::props!{$($rest)*}
    };
    (
        @one ($min_cases:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $gen:expr),+ $(,)?) $body:block
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __runner = $crate::runner::Runner::new(
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
            )
            .min_cases($min_cases);
            let __gen = $crate::gen::tuple(($($gen,)+));
            __runner.run(__gen, |__case| {
                let ($($arg,)+) = __case.clone();
                $body
                Ok(())
            });
        }
    };
}

/// Fails the current case unless the condition holds (ports
/// `prop_assert!`).
#[macro_export]
macro_rules! require {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::CaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::CaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides compare equal (ports
/// `prop_assert_eq!`).
#[macro_export]
macro_rules! require_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::CaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::CaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Fails the current case when both sides compare equal (ports
/// `prop_assert_ne!`).
#[macro_export]
macro_rules! require_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return Err($crate::CaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Discards the current case unless the condition holds (ports
/// `prop_assume!`); discarded cases are regenerated and do not count.
#[macro_export]
macro_rules! assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::CaseError::Discard);
        }
    };
}
