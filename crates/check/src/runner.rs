//! The property runner: deterministic case generation, regression-seed
//! replay, greedy shrinking, and failure persistence.

use crate::gen::Gen;
use crate::tree::Tree;
use crate::CaseError;
use hpm_rand::{Rng, SmallRng};
use std::fmt::Debug;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Default deterministic cases per property (raise with
/// `HPM_CHECK_CASES`).
pub const DEFAULT_CASES: u32 = 64;

/// Default master seed (override with `HPM_CHECK_SEED`). Every property
/// derives its own stream from this and its name, so suites are stable
/// under test reordering.
pub const DEFAULT_SEED: u64 = 0x4850_4D43_4845_434B; // "HPMCHECK"

/// Runner configuration, read from the environment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Deterministic cases per property (`HPM_CHECK_CASES`, default 64).
    pub cases: u32,
    /// Master seed (`HPM_CHECK_SEED`, decimal or 0x-hex).
    pub seed: u64,
    /// Cap on shrink-candidate evaluations (`HPM_CHECK_SHRINKS`).
    pub max_shrink_evals: u32,
    /// Persist new failure seeds to the regression file
    /// (`HPM_CHECK_PERSIST=0` disables).
    pub persist: bool,
}

impl Config {
    /// Reads the configuration from the environment.
    pub fn from_env() -> Self {
        let parse_u64 = |key: &str, default: u64| {
            std::env::var(key)
                .ok()
                .and_then(|v| {
                    let v = v.trim();
                    if let Some(hex) = v.strip_prefix("0x") {
                        u64::from_str_radix(hex, 16).ok()
                    } else {
                        v.parse().ok()
                    }
                })
                .unwrap_or(default)
        };
        Config {
            cases: parse_u64("HPM_CHECK_CASES", u64::from(DEFAULT_CASES)).max(1) as u32,
            seed: parse_u64("HPM_CHECK_SEED", DEFAULT_SEED),
            max_shrink_evals: parse_u64("HPM_CHECK_SHRINKS", 2048) as u32,
            persist: std::env::var("HPM_CHECK_PERSIST").map_or(true, |v| v != "0"),
        }
    }
}

/// FNV-1a — stable name/token hashing for per-property streams.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs one property: regression replay first, then fresh cases.
pub struct Runner {
    config: Config,
    name: String,
    regression_file: PathBuf,
}

impl Runner {
    /// Creates a runner for the property `name` defined in the test
    /// source `file` (pass `file!()`) of the crate at `manifest_dir`
    /// (pass `env!("CARGO_MANIFEST_DIR")`). The pair is needed because
    /// `file!()` is workspace-relative while tests run from the crate
    /// root — see `resolve_source` in this module.
    pub fn new(manifest_dir: &str, file: &str, name: &str) -> Self {
        let source = resolve_source(manifest_dir, file);
        let stem = source
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "props".to_string());
        let regression_file = source.with_file_name(format!("{stem}.proptest-regressions"));
        Runner {
            config: Config::from_env(),
            name: name.to_string(),
            regression_file,
        }
    }

    /// Overrides the case count (tests of the harness itself).
    pub fn cases(mut self, cases: u32) -> Self {
        self.config.cases = cases;
        self
    }

    /// Raises the case count to at least `cases`, without lowering an
    /// `HPM_CHECK_CASES` override (the `#[cases(n)]` macro attribute).
    pub fn min_cases(mut self, cases: u32) -> Self {
        self.config.cases = self.config.cases.max(cases);
        self
    }

    /// Disables failure persistence (tests of the harness itself).
    pub fn no_persist(mut self) -> Self {
        self.config.persist = false;
        self
    }

    /// Runs the property over the configured number of cases, replaying
    /// any persisted regression seeds first.
    ///
    /// # Panics
    /// Panics with the shrunk counterexample on the first failing case.
    pub fn run<T, P>(&self, gen: Gen<T>, prop: P)
    where
        T: Clone + Debug + 'static,
        P: Fn(&T) -> Result<(), CaseError>,
    {
        // 1. Regression seeds recorded by earlier failures.
        for seed in read_regression_seeds(&self.regression_file) {
            self.run_case(&gen, &prop, seed, true);
        }

        // 2. Fresh deterministic cases.
        let mut master = SmallRng::seed_from_u64(self.config.seed ^ fnv1a(self.name.as_bytes()));
        let mut accepted = 0u32;
        let mut discarded = 0u32;
        let discard_budget = self.config.cases.saturating_mul(20);
        while accepted < self.config.cases {
            let case_seed = master.next_u64();
            if self.run_case(&gen, &prop, case_seed, false) {
                accepted += 1;
            } else {
                discarded += 1;
                assert!(
                    discarded <= discard_budget,
                    "property '{}': {} discards for {} accepted cases — \
                     weaken the assume!() or tighten the generator",
                    self.name,
                    discarded,
                    accepted
                );
            }
        }
    }

    /// Runs one case; returns `false` when the case was discarded.
    fn run_case<T, P>(&self, gen: &Gen<T>, prop: &P, case_seed: u64, from_regression: bool) -> bool
    where
        T: Clone + Debug + 'static,
        P: Fn(&T) -> Result<(), CaseError>,
    {
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let tree = gen.generate(&mut rng);
        match eval(prop, &tree.value) {
            Ok(()) => true,
            Err(CaseError::Discard) => false,
            Err(CaseError::Fail(msg)) => {
                let (value, msg, evals) = self.shrink(tree, msg, prop);
                if self.config.persist && !from_regression {
                    persist_seed(&self.regression_file, case_seed, &value);
                }
                panic!(
                    "property '{}' failed{}.\n  seed: 0x{case_seed:016x}\n  \
                     minimal case (after {evals} shrink evals): {value:?}\n  error: {msg}\n  \
                     replayed automatically from {}",
                    self.name,
                    if from_regression {
                        " (persisted regression seed)"
                    } else {
                        ""
                    },
                    self.regression_file.display(),
                );
            }
        }
    }

    /// Greedy descent: repeatedly move to the first shrink candidate
    /// that still fails, until none does or the eval budget runs out.
    fn shrink<T, P>(&self, mut current: Tree<T>, mut msg: String, prop: &P) -> (T, String, u32)
    where
        T: Clone + Debug + 'static,
        P: Fn(&T) -> Result<(), CaseError>,
    {
        let mut evals = 0u32;
        'descend: loop {
            for child in current.children() {
                if evals >= self.config.max_shrink_evals {
                    break 'descend;
                }
                evals += 1;
                if let Err(CaseError::Fail(m)) = eval(prop, &child.value) {
                    current = child;
                    msg = m;
                    continue 'descend;
                }
            }
            break;
        }
        (current.value, msg, evals)
    }
}

/// Evaluates the property on one value, converting panics (library
/// `assert!`s, index errors, …) into case failures so they shrink like
/// explicit `require!` failures.
fn eval<T, P>(prop: &P, value: &T) -> Result<(), CaseError>
where
    P: Fn(&T) -> Result<(), CaseError>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(value))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "property panicked".to_string());
            Err(CaseError::Fail(format!("panic: {msg}")))
        }
    }
}

/// Resolves `file!()` (workspace-relative at compile time) against the
/// test binary's working directory and the crate's manifest dir.
fn resolve_source(manifest_dir: &str, file: &str) -> PathBuf {
    let p = Path::new(file);
    if p.exists() {
        return p.to_path_buf();
    }
    let manifest = Path::new(manifest_dir);
    let joined = manifest.join(p);
    if joined.exists() {
        return joined;
    }
    // `file!()` is rooted at the *workspace*, the manifest dir at the
    // *crate*: drop leading components until the suffix resolves.
    let mut components: Vec<_> = p.components().collect();
    while components.len() > 1 {
        components.remove(0);
        let suffix: PathBuf = components.iter().collect();
        let candidate = manifest.join(&suffix);
        if candidate.exists() {
            return candidate;
        }
    }
    joined
}

/// Parses a `*.proptest-regressions` file into replay seeds.
///
/// The `proptest` format is `cc <64 hex chars> # shrinks to …` per
/// line. The leading 16 hex chars are taken as the replay seed, so
/// seeds this harness persists round-trip exactly, and seeds inherited
/// from `proptest` runs still replay a deterministic (if different)
/// case.
pub fn read_regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(content) = fs::read_to_string(path) else {
        return Vec::new();
    };
    content
        .lines()
        .filter_map(|line| {
            let token = line.trim().strip_prefix("cc ")?.split_whitespace().next()?;
            if token.len() < 16 {
                return Some(fnv1a(token.as_bytes()));
            }
            u64::from_str_radix(&token[..16], 16)
                .ok()
                .or_else(|| Some(fnv1a(token.as_bytes())))
        })
        .collect()
}

/// Appends a failing seed in the `proptest` regression format (the
/// trailing 48 hex chars are zero padding; only the first 16 encode the
/// seed).
fn persist_seed<T: Debug>(path: &Path, seed: u64, shrunk: &T) {
    let token = format!("{seed:016x}{:048}", 0);
    if let Ok(existing) = fs::read_to_string(path) {
        if existing
            .lines()
            .any(|l| l.trim().starts_with(&format!("cc {token}")))
        {
            return;
        }
    }
    let header_needed = !path.exists();
    let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(path) else {
        return; // read-only checkout: the panic message still has the seed
    };
    if header_needed {
        let _ = writeln!(
            f,
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # It is recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases."
        );
    }
    let mut line = format!("cc {token} # shrinks to {shrunk:?}");
    line.truncate(800); // keep the file reviewable for huge cases
    let _ = writeln!(f, "{line}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{int, vec};

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hpm_check_{}_{:x}",
            std::process::id(),
            fnv1a(std::thread::current().name().unwrap_or("t").as_bytes())
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn runner(name: &str) -> Runner {
        Runner {
            config: Config {
                cases: 64,
                seed: DEFAULT_SEED,
                max_shrink_evals: 2048,
                persist: false,
            },
            name: name.to_string(),
            regression_file: temp_dir().join("props.proptest-regressions"),
        }
    }

    #[test]
    fn passing_property_runs_quietly() {
        runner("pass").run(int(0u32..100), |&v| {
            if v < 100 {
                Ok(())
            } else {
                Err(CaseError::Fail("impossible".into()))
            }
        });
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        let result = std::panic::catch_unwind(|| {
            runner("shrink_int").run(int(0u32..1000), |&v| {
                if v < 50 {
                    Ok(())
                } else {
                    Err(CaseError::Fail(format!("{v} too big")))
                }
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("minimal case"), "{msg}");
        assert!(msg.contains(": 50"), "greedy shrink should reach 50: {msg}");
    }

    #[test]
    fn failing_vec_shrinks_small() {
        let result = std::panic::catch_unwind(|| {
            runner("shrink_vec").run(vec(int(0u32..100), 0..40), |v| {
                if v.iter().any(|&x| x >= 90) {
                    Err(CaseError::Fail("has a large element".into()))
                } else {
                    Ok(())
                }
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // Minimal counterexample: exactly one element, exactly 90.
        assert!(msg.contains("[90]"), "{msg}");
    }

    #[test]
    fn discards_do_not_count_as_cases() {
        let mut ran = 0u32;
        let counter = std::cell::Cell::new(0u32);
        runner("discards").run(int(0u32..100), |&v| {
            if v % 2 == 0 {
                counter.set(counter.get() + 1);
                Ok(())
            } else {
                Err(CaseError::Discard)
            }
        });
        ran += counter.get();
        assert_eq!(ran, 64, "exactly `cases` accepted cases");
    }

    #[test]
    fn persisted_seed_replays_same_case() {
        let dir = temp_dir();
        let path = dir.join("replay.proptest-regressions");
        let _ = fs::remove_file(&path);
        persist_seed(&path, 0xDEAD_BEEF_0123_4567, &"x");
        let seeds = read_regression_seeds(&path);
        assert_eq!(seeds, vec![0xDEAD_BEEF_0123_4567]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn proptest_native_seed_lines_parse() {
        let dir = temp_dir();
        let path = dir.join("native.proptest-regressions");
        fs::write(
            &path,
            "# comment line\n\
             cc 86ec72848a6630af31d0ffba7f1c72c4e8ae304dd53800e4a0714c6a11fb0368 # shrinks to x = 1\n",
        )
        .unwrap();
        let seeds = read_regression_seeds(&path);
        assert_eq!(seeds, vec![0x86ec72848a6630af]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failure_persists_and_then_replays() {
        let dir = temp_dir();
        let path = dir.join("cycle.proptest-regressions");
        let _ = fs::remove_file(&path);
        let mk = |persist| Runner {
            config: Config {
                cases: 64,
                seed: DEFAULT_SEED,
                max_shrink_evals: 2048,
                persist,
            },
            name: "cycle".to_string(),
            regression_file: path.clone(),
        };
        let result = std::panic::catch_unwind(|| {
            mk(true).run(int(0u32..1000), |&v| {
                if v < 10 {
                    Ok(())
                } else {
                    Err(CaseError::Fail("big".into()))
                }
            });
        });
        assert!(result.is_err());
        assert!(path.exists(), "failure seed persisted");
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.contains("# shrinks to 10"), "{content}");
        // Replay: the persisted seed fires before fresh cases, and a
        // now-passing property sails through replay.
        let result = std::panic::catch_unwind(|| {
            mk(false).run(int(0u32..1000), |&_v| Ok(()));
        });
        assert!(result.is_ok());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn too_many_discards_panic() {
        let result = std::panic::catch_unwind(|| {
            runner("all_discarded").run(int(0u32..100), |_| Err(CaseError::Discard));
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("discards"), "{msg}");
    }

    #[test]
    fn resolve_source_strips_workspace_prefix() {
        // This very file resolves from its manifest dir + file!().
        let path = resolve_source(env!("CARGO_MANIFEST_DIR"), file!());
        assert!(path.exists(), "{}", path.display());
        assert!(path.ends_with("src/runner.rs"));
    }
}
