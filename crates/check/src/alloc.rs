//! A counting global allocator for allocation-regression tests.
//!
//! Wraps [`System`] and counts every `alloc`/`alloc_zeroed`/`realloc`
//! call with a relaxed atomic, so a test can assert that a hot path is
//! allocation-free after warmup:
//!
//! ```ignore
//! use hpm_check::alloc::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! warm_up();
//! let before = ALLOC.allocations();
//! hot_path();
//! assert_eq!(ALLOC.allocations() - before, 0);
//! ```
//!
//! Install it with `#[global_allocator]` in a dedicated integration
//! test file holding a *single* test function — the count is
//! process-global, so unrelated concurrent tests (the libtest harness
//! runs them on threads) would otherwise bleed into the window being
//! measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global allocator that delegates to [`System`] and counts
/// allocations (frees are not counted: a regression test for an
/// allocation-free path only cares about acquisitions).
#[derive(Debug)]
pub struct CountingAllocator {
    allocations: AtomicU64,
}

impl CountingAllocator {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        CountingAllocator {
            allocations: AtomicU64::new(0),
        }
    }

    /// Total `alloc` + `alloc_zeroed` + `realloc` calls so far, across
    /// all threads. Diff two readings to count a window.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates every operation unchanged to `System`; the counter
// has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
