//! A counting global allocator for allocation-regression tests.
//!
//! Wraps [`System`] and counts every `alloc`/`alloc_zeroed`/`realloc`
//! call with a relaxed atomic, so a test can assert that a hot path is
//! allocation-free after warmup:
//!
//! ```ignore
//! use hpm_check::alloc::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! warm_up();
//! let before = ALLOC.allocations();
//! hot_path();
//! assert_eq!(ALLOC.allocations() - before, 0);
//! ```
//!
//! Beyond call counts, the allocator tracks **bytes**: the live
//! (currently outstanding) byte total and the high-water mark since the
//! last [`reset_peak`](CountingAllocator::reset_peak). That lets a
//! steady-state test bound *retained growth* (diff two `live_bytes`
//! readings around a window that should retain almost nothing) and a
//! footprint test bound *transient spikes* (`peak_bytes` after a reset).
//!
//! Install it with `#[global_allocator]` in a dedicated integration
//! test file holding a *single* test function — the counters are
//! process-global, so unrelated concurrent tests (the libtest harness
//! runs them on threads) would otherwise bleed into the window being
//! measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global allocator that delegates to [`System`] and counts
/// allocations and live/peak bytes (frees decrement the live total but
/// are not counted as calls: a regression test for an allocation-free
/// path only cares about acquisitions).
#[derive(Debug)]
pub struct CountingAllocator {
    allocations: AtomicU64,
    live_bytes: AtomicU64,
    peak_bytes: AtomicU64,
}

impl CountingAllocator {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        CountingAllocator {
            allocations: AtomicU64::new(0),
            live_bytes: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
        }
    }

    /// Total `alloc` + `alloc_zeroed` + `realloc` calls so far, across
    /// all threads. Diff two readings to count a window.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Bytes currently allocated and not yet freed, across all
    /// threads. Diff two readings around a window to measure retained
    /// (steady-state) growth.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of [`live_bytes`](Self::live_bytes) since
    /// process start or the last [`reset_peak`](Self::reset_peak).
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live total, so the next
    /// [`peak_bytes`](Self::peak_bytes) reading reflects only the
    /// window that follows. Relaxed and racy by design: concurrent
    /// allocations during the reset may land on either side of it,
    /// which is fine for the single-threaded measurement windows these
    /// tests use.
    pub fn reset_peak(&self) {
        self.peak_bytes
            .store(self.live_bytes.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn on_alloc(&self, size: usize) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        let live = self
            .live_bytes
            .fetch_add(size as u64, Ordering::Relaxed)
            .wrapping_add(size as u64);
        self.peak_bytes.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(&self, size: usize) {
        self.live_bytes.fetch_sub(size as u64, Ordering::Relaxed);
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates every operation unchanged to `System`; the counters
// have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            self.on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.on_dealloc(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            self.on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // Count the realloc as one acquisition; adjust live bytes
            // by the size delta.
            self.on_dealloc(layout.size());
            self.on_alloc(new_size);
        }
        new_ptr
    }
}
