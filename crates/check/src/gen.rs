//! Value generators and combinators.
//!
//! A [`Gen<T>`] draws a shrinkable [`Tree<T>`] from a seeded
//! [`SmallRng`]. Combinators mirror the slice of `proptest`'s strategy
//! API the workspace uses: ranges, `vec`, `map`, `flat_map`, tuples,
//! and constant choice.

use crate::tree::{vec_tree, Tree};
use hpm_rand::{Rng, SmallRng};
use std::ops::{Bound, RangeBounds};
use std::rc::Rc;

/// The shared tree-drawing closure inside a [`Gen`].
type RunFn<T> = Rc<dyn Fn(&mut SmallRng) -> Tree<T>>;

/// A generator of shrinkable `T` values.
pub struct Gen<T> {
    run: RunFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            run: Rc::clone(&self.run),
        }
    }
}

impl<T: Clone + 'static> Gen<T> {
    /// Wraps a raw tree-drawing function.
    pub fn new(run: impl Fn(&mut SmallRng) -> Tree<T> + 'static) -> Self {
        Gen { run: Rc::new(run) }
    }

    /// Draws one shrinkable value.
    pub fn generate(&self, rng: &mut SmallRng) -> Tree<T> {
        (self.run)(rng)
    }

    /// Maps generated values (shrinking maps through).
    pub fn map<U: Clone + 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let f: Rc<dyn Fn(T) -> U> = Rc::new(f);
        Gen::new(move |rng| self.generate(rng).map(Rc::clone(&f)))
    }

    /// Dependent generation: builds the inner generator from an outer
    /// draw. Shrinking is greedy over the *inner* value only (the
    /// outer draw stays fixed) — cheap and deterministic, which is all
    /// the suites need.
    pub fn flat_map<U: Clone + 'static>(self, f: impl Fn(T) -> Gen<U> + 'static) -> Gen<U> {
        Gen::new(move |rng| {
            let outer = self.generate(rng);
            f(outer.value).generate(rng)
        })
    }
}

/// A constant.
pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| Tree::leaf(value.clone()))
}

/// Uniform pick among constants; shrinks towards the first.
///
/// # Panics
/// Panics when `options` is empty.
pub fn choice<T: Clone + 'static>(options: Vec<T>) -> Gen<T> {
    assert!(!options.is_empty(), "choice of nothing");
    let n = options.len();
    int(0usize..n).map(move |i| options[i].clone())
}

/// Integer shrink candidates: the origin first, then halving steps back
/// towards `current` (aggressive to conservative).
pub fn shrink_i128(origin: i128, current: i128) -> Vec<i128> {
    if current == origin {
        return Vec::new();
    }
    let mut out = vec![origin];
    let mut delta = (current - origin) / 2;
    while delta != 0 {
        let candidate = current - delta;
        if candidate != origin {
            out.push(candidate);
        }
        delta /= 2;
    }
    out
}

/// Float shrink candidates, same shape as [`shrink_i128`].
fn shrink_f64(origin: f64, current: f64) -> Vec<f64> {
    if current == origin || !current.is_finite() {
        return Vec::new();
    }
    let mut out = vec![origin];
    let mut delta = (current - origin) / 2.0;
    for _ in 0..24 {
        let candidate = current - delta;
        if candidate == current {
            break;
        }
        if candidate != origin {
            out.push(candidate);
        }
        delta /= 2.0;
    }
    out
}

/// Conversions between the supported integer types and the `i128`
/// shrinking domain.
pub trait Int: Copy + PartialOrd + std::fmt::Debug + 'static {
    /// Widens to the shrink domain.
    fn to_i128(self) -> i128;
    /// Narrows from the shrink domain (always in range here).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Int for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn int_bounds<T: Int>(range: &impl RangeBounds<T>) -> (i128, i128) {
    // Normalised to an inclusive [lo, hi].
    let lo = match range.start_bound() {
        Bound::Included(v) => v.to_i128(),
        Bound::Excluded(v) => v.to_i128() + 1,
        Bound::Unbounded => panic!("unbounded integer generator"),
    };
    let hi = match range.end_bound() {
        Bound::Included(v) => v.to_i128(),
        Bound::Excluded(v) => v.to_i128() - 1,
        Bound::Unbounded => panic!("unbounded integer generator"),
    };
    assert!(lo <= hi, "empty integer range");
    (lo, hi)
}

/// Uniform integer in `range` (`a..b` or `a..=b`); shrinks towards 0
/// clamped into the range.
pub fn int<T: Int>(range: impl RangeBounds<T>) -> Gen<T> {
    let (lo, hi) = int_bounds(&range);
    let origin = 0i128.clamp(lo, hi);
    Gen::new(move |rng| {
        let span = (hi - lo) as u128 + 1;
        let v = if span > u128::from(u64::MAX) {
            lo + i128::from(rng.next_u64())
        } else {
            lo + i128::from(rng.gen_range(0..span as u64))
        };
        int_tree::<T>(origin, v)
    })
}

fn int_tree<T: Int>(origin: i128, current: i128) -> Tree<T> {
    Tree::with_children(T::from_i128(current), move || {
        shrink_i128(origin, current)
            .into_iter()
            .map(|c| int_tree::<T>(origin, c))
            .collect()
    })
}

/// Uniform `f64` in `range` (`a..b` or `a..=b`); shrinks towards 0
/// clamped into the range.
pub fn float(range: impl RangeBounds<f64>) -> Gen<f64> {
    let lo = match range.start_bound() {
        Bound::Included(v) | Bound::Excluded(v) => *v,
        Bound::Unbounded => panic!("unbounded float generator"),
    };
    let (hi, inclusive) = match range.end_bound() {
        Bound::Included(v) => (*v, true),
        Bound::Excluded(v) => (*v, false),
        Bound::Unbounded => panic!("unbounded float generator"),
    };
    assert!(lo < hi || (lo == hi && inclusive), "empty float range");
    let mut origin = 0.0f64.clamp(lo, hi);
    if !inclusive && origin >= hi {
        origin = lo; // keep the shrink target inside the half-open range
    }
    Gen::new(move |rng| {
        let v = if inclusive {
            rng.gen_range(lo..=hi)
        } else {
            rng.gen_range(lo..hi)
        };
        float_tree(origin, v)
    })
}

fn float_tree(origin: f64, current: f64) -> Tree<f64> {
    Tree::with_children(current, move || {
        shrink_f64(origin, current)
            .into_iter()
            .map(|c| float_tree(origin, c))
            .collect()
    })
}

/// A vector of `len_range.start() ..` up to (exclusive) `len_range.end`
/// elements — same length convention as `proptest::collection::vec`.
/// Shrinks by removing elements (never below the minimum), then by
/// shrinking elements in place.
pub fn vec<T: Clone + 'static>(element: Gen<T>, len_range: std::ops::Range<usize>) -> Gen<Vec<T>> {
    let min = len_range.start;
    Gen::new(move |rng| {
        let len = rng.gen_range(len_range.clone());
        let elements: Vec<Tree<T>> = (0..len).map(|_| element.generate(rng)).collect();
        vec_tree(elements, min)
    })
}

/// An opaque collection index (ports `proptest`'s `sample::Index`):
/// call [`Index::index`] with the collection length at use time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(pub usize);

impl Index {
    /// Maps onto `0..len`.
    ///
    /// # Panics
    /// Panics when `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "index into empty collection");
        self.0 % len
    }
}

/// Uniform [`Index`]; shrinks towards 0.
pub fn index() -> Gen<Index> {
    int(0usize..usize::MAX / 2).map(Index)
}

/// Overloads [`tuple()`](fn@tuple) for arities 1–6.
pub trait TupleGen {
    /// The generated tuple type.
    type Output: Clone + 'static;
    /// Combines component generators into one.
    fn into_gen(self) -> Gen<Self::Output>;
}

/// Combines a tuple of generators into a generator of tuples; shrinking
/// works one component at a time.
pub fn tuple<T: TupleGen>(t: T) -> Gen<T::Output> {
    t.into_gen()
}

fn zip2<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    Gen::new(move |rng| {
        let ta = a.generate(rng);
        let tb = b.generate(rng);
        ta.zip(&tb)
    })
}

impl<A: Clone + 'static> TupleGen for (Gen<A>,) {
    type Output = (A,);
    fn into_gen(self) -> Gen<(A,)> {
        self.0.map(|a| (a,))
    }
}

impl<A: Clone + 'static, B: Clone + 'static> TupleGen for (Gen<A>, Gen<B>) {
    type Output = (A, B);
    fn into_gen(self) -> Gen<(A, B)> {
        zip2(self.0, self.1)
    }
}

impl<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static> TupleGen
    for (Gen<A>, Gen<B>, Gen<C>)
{
    type Output = (A, B, C);
    fn into_gen(self) -> Gen<(A, B, C)> {
        zip2(zip2(self.0, self.1), self.2).map(|((a, b), c)| (a, b, c))
    }
}

impl<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static, D: Clone + 'static> TupleGen
    for (Gen<A>, Gen<B>, Gen<C>, Gen<D>)
{
    type Output = (A, B, C, D);
    fn into_gen(self) -> Gen<(A, B, C, D)> {
        zip2(zip2(self.0, self.1), zip2(self.2, self.3)).map(|((a, b), (c, d))| (a, b, c, d))
    }
}

impl<
        A: Clone + 'static,
        B: Clone + 'static,
        C: Clone + 'static,
        D: Clone + 'static,
        E: Clone + 'static,
    > TupleGen for (Gen<A>, Gen<B>, Gen<C>, Gen<D>, Gen<E>)
{
    type Output = (A, B, C, D, E);
    fn into_gen(self) -> Gen<(A, B, C, D, E)> {
        zip2(zip2(zip2(self.0, self.1), zip2(self.2, self.3)), self.4)
            .map(|(((a, b), (c, d)), e)| (a, b, c, d, e))
    }
}

impl<
        A: Clone + 'static,
        B: Clone + 'static,
        C: Clone + 'static,
        D: Clone + 'static,
        E: Clone + 'static,
        F: Clone + 'static,
    > TupleGen for (Gen<A>, Gen<B>, Gen<C>, Gen<D>, Gen<E>, Gen<F>)
{
    type Output = (A, B, C, D, E, F);
    fn into_gen(self) -> Gen<(A, B, C, D, E, F)> {
        zip2(
            zip2(zip2(self.0, self.1), zip2(self.2, self.3)),
            zip2(self.4, self.5),
        )
        .map(|(((a, b), (c, d)), (e, f))| (a, b, c, d, e, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn int_stays_in_range_and_shrinks_to_origin() {
        let g = int(3u32..17);
        let mut r = rng();
        for _ in 0..500 {
            let t = g.generate(&mut r);
            assert!((3..17).contains(&t.value));
            if let Some(first) = t.children().first() {
                assert_eq!(first.value, 3, "most aggressive candidate is the origin");
            }
        }
    }

    #[test]
    fn float_stays_in_range() {
        let g = float(-2.0..5.0);
        let mut r = rng();
        for _ in 0..500 {
            let t = g.generate(&mut r);
            assert!((-2.0..5.0).contains(&t.value));
            for c in t.children() {
                assert!((-2.0..5.0).contains(&c.value));
            }
        }
    }

    #[test]
    fn vec_lengths_honour_range() {
        let g = vec(int(0u8..=255), 2..9);
        let mut r = rng();
        for _ in 0..200 {
            let t = g.generate(&mut r);
            assert!((2..9).contains(&t.value.len()));
        }
    }

    #[test]
    fn map_shrinks_through() {
        let g = int(0i64..100).map(|v| v * 3);
        let mut r = rng();
        let t = g.generate(&mut r);
        for c in t.children() {
            assert_eq!(c.value % 3, 0);
        }
    }

    #[test]
    fn flat_map_uses_outer_value() {
        let g = int(1usize..4).flat_map(|n| vec(just(7u8), n..n + 1));
        let mut r = rng();
        for _ in 0..50 {
            let t = g.generate(&mut r);
            assert!((1..4).contains(&t.value.len()));
            assert!(t.value.iter().all(|&v| v == 7));
        }
    }

    #[test]
    fn choice_picks_every_option() {
        let g = choice(vec!['a', 'b', 'c']);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(g.generate(&mut r).value);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let g = tuple((int(0u32..10), float(0.0..1.0), just("x")));
        let mut r = rng();
        let t = g.generate(&mut r);
        let (a0, b0, _) = t.value;
        for c in t.children() {
            let (a, b, _) = c.value;
            assert!(a == a0 || b == b0, "both components changed at once");
        }
    }

    #[test]
    fn index_is_stable_modulo() {
        let idx = Index(13);
        assert_eq!(idx.index(5), 3);
        assert_eq!(idx.index(1), 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let g = vec(float(-1.0..1.0), 0..20);
        let a: Vec<Vec<f64>> = {
            let mut r = rng();
            (0..20).map(|_| g.generate(&mut r).value).collect()
        };
        let b: Vec<Vec<f64>> = {
            let mut r = rng();
            (0..20).map(|_| g.generate(&mut r).value).collect()
        };
        assert_eq!(a, b);
    }
}
