use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A location in the plane.
///
/// Used both for absolute positions and for displacement/velocity
/// vectors (the paper's motion functions treat locations as
/// d-dimensional vectors, here d = 2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    ///
    /// This is the paper's prediction-error metric: "A prediction error
    /// is measured as the distance between a predicted location and its
    /// actual location" (§VII.A).
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the `sqrt` in hot comparison
    /// loops such as DBSCAN neighbourhood tests).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length when the point is used as a displacement.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(&self, other: &Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Linear interpolation: returns `self` at `t = 0` and `other` at
    /// `t = 1`; `t` outside `[0, 1]` extrapolates.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point {
            x: self.x.min(other.x),
            y: self.y.min(other.y),
        }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point {
            x: self.x.max(other.x),
            y: self.y.max(other.y),
        }
    }

    /// True when both coordinates are finite (no NaN/∞). Workload
    /// generators and solvers assert this on their outputs.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Clamps both coordinates into `[lo, hi]` — used to keep synthetic
    /// trajectories inside the normalised data extent.
    #[inline]
    pub fn clamp(&self, lo: f64, hi: f64) -> Point {
        Point {
            x: self.x.clamp(lo, hi),
            y: self.y.clamp(lo, hi),
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, s: f64) -> Point {
        Point::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, s: f64) -> Point {
        Point::new(self.x / s, self.y / s)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

/// Arithmetic mean of a non-empty point set; `None` when empty.
///
/// The consequence of a trajectory pattern is a frequent *region*; FQP
/// and BQP answer queries with "the center of each consequence" (§VI),
/// which is this centroid.
pub fn centroid(points: &[Point]) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let mut acc = Point::ORIGIN;
    for p in points {
        acc += *p;
    }
    Some(acc / points.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-7.0, 0.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        assert_eq!(centroid(&pts), Some(Point::new(1.0, 1.0)));
    }

    #[test]
    fn centroid_empty_is_none() {
        assert_eq!(centroid(&[]), None);
    }

    #[test]
    fn clamp_keeps_extent() {
        let p = Point::new(-5.0, 11_000.0);
        assert_eq!(p.clamp(0.0, 10_000.0), Point::new(0.0, 10_000.0));
    }

    #[test]
    fn dot_and_norm() {
        let a = Point::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.dot(&Point::new(1.0, 0.0)), 3.0);
    }

    #[test]
    fn finite_check_rejects_nan() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
