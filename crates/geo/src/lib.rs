//! Planar geometry substrate for the Hybrid Prediction Model.
//!
//! Moving-object trajectories in the paper live in a normalised
//! `[0, 10000]²` plane; this crate provides the small set of geometric
//! value types every other crate builds on: [`Point`], [`BoundingBox`]
//! and polyline helpers.
//!
//! All types are plain `f64` value types: cheap to copy and
//! `PartialEq` for tests.

mod bbox;
pub mod grid;
mod hull;
pub mod mem;
mod point;
mod polyline;

pub use bbox::BoundingBox;
pub use hull::{convex_contains, convex_hull, polygon_area};
pub use mem::MemUse;
pub use point::{centroid, Point};
pub use polyline::{
    path_length, point_segment_distance, resample_uniform, simplify_rdp, simplify_rdp_indices,
    walk_along,
};
