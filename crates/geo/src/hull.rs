//! Convex hulls and point-in-polygon tests.
//!
//! DBSCAN summarises frequent regions with bounding boxes; a convex
//! hull is the tighter summary for elongated or diagonal clusters
//! (Fig. 2(b)'s blobs are far from axis-aligned). Downstream users can
//! carry hulls alongside boxes for finer region-membership tests.

use crate::Point;

/// Convex hull by Andrew's monotone chain, counter-clockwise,
/// first vertex = lexicographically smallest point. Collinear boundary
/// points are dropped. Returns fewer than 3 vertices for degenerate
/// inputs (empty, single point, all-collinear).
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| (a.x, a.y).partial_cmp(&(b.x, b.y)).expect("finite points"));
    pts.dedup();
    let n = pts.len();
    if n < 3 {
        return pts;
    }
    let cross =
        |o: &Point, a: &Point, b: &Point| (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for p in &pts {
        while hull.len() >= 2 && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(*p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for p in pts.iter().rev() {
        while hull.len() >= lower_len
            && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }
    hull.pop(); // the first point repeats at the end
    if hull.len() < 3 {
        // All points collinear: return the two extremes.
        hull.truncate(2);
    }
    hull
}

/// Whether `p` lies inside or on the boundary of the convex polygon
/// `hull` (counter-clockwise vertices, as produced by [`convex_hull`]).
/// Polygons with fewer than 3 vertices contain only their own points
/// (within `1e-9`).
pub fn convex_contains(hull: &[Point], p: &Point) -> bool {
    match hull.len() {
        0 => false,
        1 => hull[0].distance(p) < 1e-9,
        2 => crate::point_segment_distance(p, &hull[0], &hull[1]) < 1e-9,
        _ => {
            for i in 0..hull.len() {
                let a = hull[i];
                let b = hull[(i + 1) % hull.len()];
                let cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
                if cross < -1e-9 {
                    return false;
                }
            }
            true
        }
    }
}

/// Signed area of a simple polygon (positive for counter-clockwise).
pub fn polygon_area(polygon: &[Point]) -> f64 {
    if polygon.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..polygon.len() {
        let a = polygon[i];
        let b = polygon[(i + 1) % polygon.len()];
        acc += a.x * b.y - b.x * a.y;
    }
    acc / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0), // interior
            Point::new(2.0, 0.0), // collinear boundary
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert_eq!(hull[0], Point::new(0.0, 0.0)); // lexicographic start
        assert!((polygon_area(&hull) - 16.0).abs() < 1e-12);
        // Counter-clockwise orientation: positive area.
        assert!(polygon_area(&hull) > 0.0);
    }

    #[test]
    fn hull_membership() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(3.0, 5.0),
            Point::new(-1.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        for p in &pts {
            assert!(convex_contains(&hull, p), "vertex {p} outside own hull");
        }
        assert!(convex_contains(&hull, &Point::new(1.5, 2.0)));
        assert!(!convex_contains(&hull, &Point::new(5.0, 5.0)));
        assert!(!convex_contains(&hull, &Point::new(-1.0, 0.0)));
    }

    #[test]
    fn degenerate_hulls() {
        assert!(convex_hull(&[]).is_empty());
        let single = convex_hull(&[Point::new(1.0, 1.0)]);
        assert_eq!(single.len(), 1);
        assert!(convex_contains(&single, &Point::new(1.0, 1.0)));
        assert!(!convex_contains(&single, &Point::new(1.1, 1.0)));
        // Collinear points: the two extremes.
        let line: Vec<Point> = (0..5).map(|i| Point::new(i as f64, i as f64)).collect();
        let hull = convex_hull(&line);
        assert_eq!(hull.len(), 2);
        assert!(convex_contains(&hull, &Point::new(2.0, 2.0)));
        assert!(!convex_contains(&hull, &Point::new(2.0, 3.0)));
        assert_eq!(polygon_area(&hull), 0.0);
    }

    #[test]
    fn duplicates_collapse() {
        let pts = vec![Point::new(0.0, 0.0); 10];
        assert_eq!(convex_hull(&pts).len(), 1);
    }

    #[test]
    fn hull_tighter_than_bbox() {
        // A diagonal strip: the hull's area is far below the bbox's.
        let pts: Vec<Point> = (0..50)
            .map(|i| {
                let t = i as f64;
                Point::new(t, t + (i % 3) as f64 * 0.5)
            })
            .collect();
        let hull = convex_hull(&pts);
        let bbox = crate::BoundingBox::from_points(&pts).unwrap();
        assert!(polygon_area(&hull) < 0.1 * bbox.area());
    }
}
