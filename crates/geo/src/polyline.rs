//! Polyline helpers used by the synthetic workload generators.
//!
//! Seed routes (a commuter's road path, a flight leg between airports)
//! are authored as sparse waypoint polylines; the generator resamples
//! them into `T` evenly spaced positions — one per time offset — so
//! every generated sub-trajectory has exactly the paper's layout
//! (`T = 300` positions per period).

use crate::Point;

/// Total length of the polyline through `points`.
pub fn path_length(points: &[Point]) -> f64 {
    points.windows(2).map(|w| w[0].distance(&w[1])).sum()
}

/// The position reached after travelling `dist` along the polyline.
///
/// Clamps to the endpoints: negative distances return the first vertex,
/// distances past the end return the last vertex.
pub fn walk_along(points: &[Point], dist: f64) -> Option<Point> {
    let (first, _) = points.split_first()?;
    if dist <= 0.0 {
        return Some(*first);
    }
    let mut remaining = dist;
    for w in points.windows(2) {
        let seg = w[0].distance(&w[1]);
        if remaining <= seg {
            if seg == 0.0 {
                return Some(w[0]);
            }
            return Some(w[0].lerp(&w[1], remaining / seg));
        }
        remaining -= seg;
    }
    points.last().copied()
}

/// Resamples the polyline into exactly `n` points at uniform arc-length
/// spacing (endpoints included). Returns `None` for an empty polyline
/// or `n == 0`; a single-vertex polyline repeats that vertex.
pub fn resample_uniform(points: &[Point], n: usize) -> Option<Vec<Point>> {
    if points.is_empty() || n == 0 {
        return None;
    }
    let total = path_length(points);
    if total == 0.0 || n == 1 {
        return Some(vec![points[0]; n]);
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let d = total * i as f64 / (n - 1) as f64;
        // `walk_along` cannot fail here: `points` is non-empty.
        out.push(walk_along(points, d).expect("non-empty polyline"));
    }
    Some(out)
}

/// Perpendicular distance from `p` to the segment `a`–`b` (to the
/// endpoint distance when the projection falls outside the segment).
pub fn point_segment_distance(p: &Point, a: &Point, b: &Point) -> f64 {
    let ab = *b - *a;
    let len2 = ab.dot(&ab);
    if len2 == 0.0 {
        return p.distance(a);
    }
    let t = ((*p - *a).dot(&ab) / len2).clamp(0.0, 1.0);
    p.distance(&a.lerp(b, t))
}

/// Ramer–Douglas–Peucker polyline simplification: keeps the endpoints
/// and every vertex deviating more than `epsilon` from the simplified
/// chain. Useful for compacting stored trajectories and authoring
/// archetype routes from dense GPS traces.
///
/// Returns the kept vertices in order; inputs of ≤ 2 points are
/// returned unchanged. Use [`simplify_rdp_indices`] when the original
/// positions (e.g. timestamps) of the kept vertices matter.
///
/// # Panics
/// Panics when `epsilon` is negative or not finite.
pub fn simplify_rdp(points: &[Point], epsilon: f64) -> Vec<Point> {
    simplify_rdp_indices(points, epsilon)
        .into_iter()
        .map(|i| points[i])
        .collect()
}

/// [`simplify_rdp`] returning the *indices* of the kept vertices
/// (ascending) instead of their positions — unambiguous even when the
/// input repeats positions (a dwelling object samples the same spot
/// many times).
///
/// # Panics
/// Panics when `epsilon` is negative or not finite.
pub fn simplify_rdp_indices(points: &[Point], epsilon: f64) -> Vec<usize> {
    assert!(
        epsilon >= 0.0 && epsilon.is_finite(),
        "epsilon must be non-negative"
    );
    if points.len() <= 2 {
        return (0..points.len()).collect();
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    keep[points.len() - 1] = true;
    // Iterative worklist instead of recursion: GPS traces can be long.
    let mut stack = vec![(0usize, points.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut worst, mut worst_d) = (lo, -1.0f64);
        for i in lo + 1..hi {
            let d = point_segment_distance(&points[i], &points[lo], &points[hi]);
            if d > worst_d {
                (worst, worst_d) = (i, d);
            }
        }
        if worst_d > epsilon {
            keep[worst] = true;
            stack.push((lo, worst));
            stack.push((worst, hi));
        }
    }
    keep.iter()
        .enumerate()
        .filter(|(_, k)| **k)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 4.0),
        ]
    }

    #[test]
    fn length_of_l_shape() {
        assert_eq!(path_length(&l_shape()), 7.0);
    }

    #[test]
    fn length_of_single_point_is_zero() {
        assert_eq!(path_length(&[Point::new(1.0, 1.0)]), 0.0);
    }

    #[test]
    fn walk_along_segments() {
        let p = l_shape();
        assert_eq!(walk_along(&p, 0.0), Some(Point::new(0.0, 0.0)));
        assert_eq!(walk_along(&p, 1.5), Some(Point::new(1.5, 0.0)));
        assert_eq!(walk_along(&p, 3.0), Some(Point::new(3.0, 0.0)));
        assert_eq!(walk_along(&p, 5.0), Some(Point::new(3.0, 2.0)));
        // Past the end clamps to the last vertex.
        assert_eq!(walk_along(&p, 100.0), Some(Point::new(3.0, 4.0)));
        // Negative clamps to the start.
        assert_eq!(walk_along(&p, -1.0), Some(Point::new(0.0, 0.0)));
    }

    #[test]
    fn walk_along_empty_is_none() {
        assert_eq!(walk_along(&[], 1.0), None);
    }

    #[test]
    fn resample_endpoints_preserved() {
        let p = l_shape();
        let r = resample_uniform(&p, 8).unwrap();
        assert_eq!(r.len(), 8);
        assert_eq!(r[0], p[0]);
        assert_eq!(*r.last().unwrap(), *p.last().unwrap());
    }

    #[test]
    fn resample_spacing_is_uniform() {
        let p = l_shape();
        let r = resample_uniform(&p, 15).unwrap();
        let gaps: Vec<f64> = r.windows(2).map(|w| w[0].distance(&w[1])).collect();
        let expected = 7.0 / 14.0;
        for g in gaps {
            assert!((g - expected).abs() < 1e-9, "gap {g} != {expected}");
        }
    }

    #[test]
    fn resample_degenerate_cases() {
        assert!(resample_uniform(&[], 5).is_none());
        assert!(resample_uniform(&l_shape(), 0).is_none());
        let single = resample_uniform(&[Point::new(2.0, 2.0)], 4).unwrap();
        assert_eq!(single, vec![Point::new(2.0, 2.0); 4]);
    }

    #[test]
    fn segment_distance_cases() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(point_segment_distance(&Point::new(5.0, 3.0), &a, &b), 3.0);
        // Projection outside the segment: endpoint distance.
        assert_eq!(point_segment_distance(&Point::new(-4.0, 0.0), &a, &b), 4.0);
        assert_eq!(point_segment_distance(&Point::new(13.0, 4.0), &a, &b), 5.0);
        // Degenerate segment.
        assert_eq!(point_segment_distance(&Point::new(3.0, 4.0), &a, &a), 5.0);
    }

    #[test]
    fn rdp_removes_collinear_points() {
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
        let s = simplify_rdp(&pts, 0.01);
        assert_eq!(s, vec![Point::new(0.0, 0.0), Point::new(9.0, 0.0)]);
    }

    #[test]
    fn rdp_keeps_the_corner() {
        // A dense L-shape: everything but the endpoints and the corner
        // collapses.
        let mut pts: Vec<Point> = (0..=30).map(|i| Point::new(i as f64 * 0.1, 0.0)).collect();
        pts.extend((1..=40).map(|i| Point::new(3.0, i as f64 * 0.1)));
        let s = simplify_rdp(&pts, 0.05);
        assert_eq!(
            s,
            vec![
                Point::new(0.0, 0.0),
                Point::new(3.0, 0.0),
                Point::new(3.0, 4.0)
            ]
        );
    }

    #[test]
    fn rdp_epsilon_bounds_deviation() {
        // Every dropped point stays within epsilon of the simplified
        // chain.
        let pts: Vec<Point> = (0..60)
            .map(|i| {
                let t = i as f64 * 0.2;
                Point::new(t, (t * 1.3).sin() * 2.0)
            })
            .collect();
        let eps = 0.4;
        let s = simplify_rdp(&pts, eps);
        assert!(s.len() < pts.len());
        for p in &pts {
            let d = s
                .windows(2)
                .map(|w| point_segment_distance(p, &w[0], &w[1]))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= eps + 1e-9, "deviation {d} > {eps}");
        }
    }

    #[test]
    fn rdp_small_inputs_unchanged() {
        assert!(simplify_rdp(&[], 1.0).is_empty());
        let two = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        assert_eq!(simplify_rdp(&two, 1.0), two);
    }

    #[test]
    fn rdp_zero_epsilon_keeps_all_non_collinear() {
        let zig = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 1.0),
        ];
        assert_eq!(simplify_rdp(&zig, 0.0), zig);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rdp_negative_epsilon_panics() {
        simplify_rdp(&l_shape(), -1.0);
    }
}
