//! Uniform-grid helpers for spatial partitioning.
//!
//! The predictive index in `hpm-objectstore` buckets object envelopes
//! by the grid cell their centre falls in; these helpers keep the
//! cell arithmetic (quantisation, cell extents, box↔cell coverage) in
//! one place, next to the geometry types it is defined over.

use crate::{BoundingBox, Point};

/// Index of a uniform grid cell: `(column, row)` in units of the grid's
/// cell size, covering the whole plane (negative coordinates quantise
/// to negative indices).
pub type CellKey = (i64, i64);

/// Quantises one coordinate to its cell index for the given cell size.
///
/// Cells are half-open `[k·size, (k+1)·size)` intervals, so every
/// finite coordinate belongs to exactly one cell.
///
/// # Panics
/// Debug-asserts that `size` is positive and finite.
#[inline]
pub fn cell_index(coord: f64, size: f64) -> i64 {
    debug_assert!(size > 0.0 && size.is_finite(), "cell size must be positive");
    (coord / size).floor() as i64
}

/// The cell containing `p` for the given cell size.
#[inline]
pub fn cell_of(p: &Point, size: f64) -> CellKey {
    (cell_index(p.x, size), cell_index(p.y, size))
}

/// The axis-aligned extent of a cell.
#[inline]
pub fn cell_box(key: CellKey, size: f64) -> BoundingBox {
    let min = Point::new(key.0 as f64 * size, key.1 as f64 * size);
    BoundingBox {
        min,
        max: Point::new(min.x + size, min.y + size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantisation_is_half_open() {
        assert_eq!(cell_index(0.0, 10.0), 0);
        assert_eq!(cell_index(9.999, 10.0), 0);
        assert_eq!(cell_index(10.0, 10.0), 1);
        assert_eq!(cell_index(-0.001, 10.0), -1);
        assert_eq!(cell_index(-10.0, 10.0), -1);
        assert_eq!(cell_index(-10.001, 10.0), -2);
    }

    #[test]
    fn cell_of_uses_both_axes() {
        assert_eq!(cell_of(&Point::new(25.0, -5.0), 10.0), (2, -1));
    }

    #[test]
    fn cell_box_roundtrips_membership() {
        let size = 7.5;
        for p in [
            Point::new(0.0, 0.0),
            Point::new(13.2, -4.4),
            Point::new(-100.0, 99.9),
        ] {
            let key = cell_of(&p, size);
            let bb = cell_box(key, size);
            assert!(bb.contains(&p), "{p} not in its own cell box {bb:?}");
        }
    }
}
