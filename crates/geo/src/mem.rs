//! Memory accounting: the [`MemUse`] trait every stateful type in the
//! workspace implements so fleet-wide byte totals can be summed without
//! a heap profiler.
//!
//! `hpm-geo` is the workspace's dependency root, which is why the trait
//! lives here: trajectory histories, predictors, TPT images, trainer
//! states and store indexes can all implement one shared trait without
//! a dependency cycle.
//!
//! Accounting convention: [`MemUse::mem_bytes`] reports the bytes a
//! value is *responsible for* — `size_of::<Self>()` plus every heap
//! block it owns, using `capacity` (not `len`) for growable buffers so
//! allocator-visible slack is charged to the owner. Numbers are
//! deliberately approximate where exactness would require allocator
//! introspection (hash-map control bytes, allocator rounding); they are
//! for capacity planning and regression budgets, not `malloc_usable_size`.

/// Types that can report the bytes they keep resident.
pub trait MemUse {
    /// Approximate resident bytes: `size_of::<Self>()` plus owned heap.
    fn mem_bytes(&self) -> usize;
}

/// Heap bytes of a `Vec` of plain (non-owning) elements, charging the
/// full capacity.
#[inline]
pub fn vec_cap_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Approximate heap bytes of a `std::collections::HashMap` with plain
/// keys and values: bucket array at capacity plus one control byte per
/// slot (hashbrown's layout, within rounding).
#[inline]
pub fn hashmap_bytes<K, V>(map: &std::collections::HashMap<K, V>) -> usize {
    map.capacity() * (std::mem::size_of::<(K, V)>() + 1)
}

/// The heap-only portion of a value's [`MemUse`] accounting — what a
/// *containing* struct adds for an inline field (whose `size_of` is
/// already part of the container's own `size_of::<Self>()`).
#[inline]
pub fn heap_bytes<T: MemUse>(v: &T) -> usize {
    v.mem_bytes() - std::mem::size_of::<T>()
}

impl<T: MemUse> MemUse for Option<T> {
    /// Discriminant + inline payload space (`size_of::<Option<T>>()`)
    /// plus the payload's heap when present.
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.as_ref().map_or(0, heap_bytes)
    }
}

impl<T: MemUse> MemUse for Vec<T> {
    /// Header + buffer at capacity + each element's own heap.
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(heap_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_cap_counts_capacity_not_len() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(vec_cap_bytes(&v), 16 * 8);
    }

    #[test]
    fn option_counts_payload_heap_only() {
        struct W(Vec<u8>);
        impl MemUse for W {
            fn mem_bytes(&self) -> usize {
                std::mem::size_of::<Self>() + self.0.capacity()
            }
        }
        let inline = std::mem::size_of::<Option<W>>();
        assert_eq!(None::<W>.mem_bytes(), inline);
        assert_eq!(heap_bytes(&None::<W>), 0);
        let w = Some(W(Vec::with_capacity(10)));
        assert_eq!(w.mem_bytes(), inline + 10);
        assert_eq!(heap_bytes(&w), 10);
    }

    #[test]
    fn vec_of_memuse_counts_element_heap() {
        struct W(Vec<u8>);
        impl MemUse for W {
            fn mem_bytes(&self) -> usize {
                std::mem::size_of::<Self>() + self.0.capacity()
            }
        }
        let mut v: Vec<W> = Vec::with_capacity(4);
        v.push(W(Vec::with_capacity(7)));
        assert_eq!(
            v.mem_bytes(),
            std::mem::size_of::<Vec<W>>() + 4 * std::mem::size_of::<W>() + 7
        );
        assert_eq!(heap_bytes(&v), 4 * std::mem::size_of::<W>() + 7);
    }

    #[test]
    fn hashmap_bytes_scales_with_capacity() {
        let mut m: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        assert_eq!(hashmap_bytes(&m), 0);
        m.insert(1, 1);
        assert!(hashmap_bytes(&m) >= 17);
    }
}
