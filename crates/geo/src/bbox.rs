use crate::Point;

/// An axis-aligned bounding rectangle.
///
/// Frequent regions `Rtʲ` discovered by DBSCAN are summarised by their
/// bounding box plus centroid; the box is what the paper draws in
/// Fig. 2(b) and what region-membership tests use when a query's recent
/// movement is matched against discovered regions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    pub min: Point,
    pub max: Point,
}

impl BoundingBox {
    /// A degenerate box containing exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        BoundingBox { min: p, max: p }
    }

    /// Tight box around a non-empty point set; `None` when empty.
    pub fn from_points(points: &[Point]) -> Option<Self> {
        let (first, rest) = points.split_first()?;
        let mut bb = BoundingBox::from_point(*first);
        for p in rest {
            bb.expand(*p);
        }
        Some(bb)
    }

    /// Grows the box to cover `p`.
    #[inline]
    pub fn expand(&mut self, p: Point) {
        self.min = self.min.min(&p);
        self.max = self.max.max(&p);
    }

    /// Grows the box to cover all of `other`.
    #[inline]
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        BoundingBox {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// Whether `p` lies inside (inclusive of the boundary).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `p` lies within `margin` of the box (inflated-inclusion
    /// test; used to match noisy query positions to frequent regions).
    #[inline]
    pub fn contains_within(&self, p: &Point, margin: f64) -> bool {
        p.x >= self.min.x - margin
            && p.x <= self.max.x + margin
            && p.y >= self.min.y - margin
            && p.y <= self.max.y + margin
    }

    /// Geometric centre of the box.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.lerp(&self.max, 0.5)
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the box (0 for degenerate boxes).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Whether two boxes overlap (inclusive of touching edges).
    #[inline]
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Minimum distance from `p` to the box (0 when inside).
    pub fn distance_to(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum distance from `p` to any point of the box — the radius
    /// of the smallest disk around `p` containing the whole box.
    pub fn far_distance_to(&self, p: &Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// This box grown by `dx` along x and `dy` along y on *each* side.
    ///
    /// # Panics
    /// Panics when either pad is negative or non-finite (a shrink can
    /// invert the box).
    pub fn padded(&self, dx: f64, dy: f64) -> BoundingBox {
        assert!(dx >= 0.0 && dy >= 0.0, "pads must be non-negative");
        BoundingBox {
            min: Point::new(self.min.x - dx, self.min.y - dy),
            max: Point::new(self.max.x + dx, self.max.y + dy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> BoundingBox {
        BoundingBox {
            min: Point::new(0.0, 0.0),
            max: Point::new(1.0, 1.0),
        }
    }

    #[test]
    fn from_points_is_tight() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(0.0, 7.0),
        ];
        let bb = BoundingBox::from_points(&pts).unwrap();
        assert_eq!(bb.min, Point::new(-2.0, 3.0));
        assert_eq!(bb.max, Point::new(1.0, 7.0));
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BoundingBox::from_points(&[]).is_none());
    }

    #[test]
    fn contains_boundary_inclusive() {
        let bb = unit_box();
        assert!(bb.contains(&Point::new(0.0, 0.0)));
        assert!(bb.contains(&Point::new(1.0, 1.0)));
        assert!(bb.contains(&Point::new(0.5, 0.5)));
        assert!(!bb.contains(&Point::new(1.01, 0.5)));
    }

    #[test]
    fn contains_within_margin() {
        let bb = unit_box();
        assert!(bb.contains_within(&Point::new(1.05, 0.5), 0.1));
        assert!(!bb.contains_within(&Point::new(1.25, 0.5), 0.1));
    }

    #[test]
    fn union_covers_both() {
        let a = unit_box();
        let b = BoundingBox {
            min: Point::new(2.0, 2.0),
            max: Point::new(3.0, 3.0),
        };
        let u = a.union(&b);
        assert!(u.contains(&Point::new(0.0, 0.0)));
        assert!(u.contains(&Point::new(3.0, 3.0)));
        assert_eq!(u.area(), 9.0);
    }

    #[test]
    fn center_and_dims() {
        let bb = BoundingBox {
            min: Point::new(0.0, 0.0),
            max: Point::new(4.0, 2.0),
        };
        assert_eq!(bb.center(), Point::new(2.0, 1.0));
        assert_eq!(bb.width(), 4.0);
        assert_eq!(bb.height(), 2.0);
        assert_eq!(bb.area(), 8.0);
    }

    #[test]
    fn intersects_touching_edges() {
        let a = unit_box();
        let b = BoundingBox {
            min: Point::new(1.0, 0.0),
            max: Point::new(2.0, 1.0),
        };
        assert!(a.intersects(&b));
        let c = BoundingBox {
            min: Point::new(1.5, 0.0),
            max: Point::new(2.0, 1.0),
        };
        assert!(!a.intersects(&c));
    }

    #[test]
    fn distance_to_point() {
        let bb = unit_box();
        assert_eq!(bb.distance_to(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(bb.distance_to(&Point::new(2.0, 0.5)), 1.0);
        let d = bb.distance_to(&Point::new(2.0, 2.0));
        assert!((d - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn far_distance_covers_whole_box() {
        let bb = unit_box();
        // From the centre the farthest corner is at distance sqrt(0.5).
        let d = bb.far_distance_to(&Point::new(0.5, 0.5));
        assert!((d - 0.5_f64.hypot(0.5)).abs() < 1e-12);
        // From outside, the far corner is (0, 0) seen from (2, 2).
        let d = bb.far_distance_to(&Point::new(2.0, 2.0));
        assert!((d - 2.0_f64.hypot(2.0)).abs() < 1e-12);
        // Degenerate box: far distance equals plain distance.
        let dot = BoundingBox::from_point(Point::new(3.0, 4.0));
        assert_eq!(dot.far_distance_to(&Point::new(0.0, 0.0)), 5.0);
    }

    #[test]
    fn padded_grows_every_side() {
        let bb = unit_box().padded(2.0, 0.5);
        assert_eq!(bb.min, Point::new(-2.0, -0.5));
        assert_eq!(bb.max, Point::new(3.0, 1.5));
        assert_eq!(unit_box().padded(0.0, 0.0), unit_box());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn padded_rejects_negative() {
        let _ = unit_box().padded(-1.0, 0.0);
    }

    #[test]
    fn expand_grows_monotonically() {
        let mut bb = BoundingBox::from_point(Point::new(0.0, 0.0));
        bb.expand(Point::new(-1.0, 2.0));
        assert!(bb.contains(&Point::new(-1.0, 2.0)));
        assert!(bb.contains(&Point::new(0.0, 0.0)));
    }
}
