//! Property-based invariants for the geometry substrate.

use hpm_check::prelude::*;
use hpm_geo::{path_length, resample_uniform, walk_along, BoundingBox, Point};

fn arb_point() -> Gen<Point> {
    tuple((float(-1.0e4..1.0e4), float(-1.0e4..1.0e4))).map(|(x, y)| Point::new(x, y))
}

fn arb_points(max: usize) -> Gen<Vec<Point>> {
    vec(arb_point(), 1..max)
}

props! {
    fn distance_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        require!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    fn distance_symmetry_and_identity(a in arb_point(), b in arb_point()) {
        require!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        require_eq!(a.distance(&a), 0.0);
    }

    fn bbox_contains_all_inputs(pts in arb_points(64)) {
        let bb = BoundingBox::from_points(&pts).unwrap();
        for p in &pts {
            require!(bb.contains(p));
        }
    }

    fn bbox_center_inside(pts in arb_points(64)) {
        let bb = BoundingBox::from_points(&pts).unwrap();
        require!(bb.contains(&bb.center()));
    }

    fn bbox_union_is_superset(p1 in arb_points(16), p2 in arb_points(16)) {
        let a = BoundingBox::from_points(&p1).unwrap();
        let b = BoundingBox::from_points(&p2).unwrap();
        let u = a.union(&b);
        for p in p1.iter().chain(p2.iter()) {
            require!(u.contains(p));
        }
    }

    fn walk_along_stays_on_path_extent(pts in arb_points(16), d in float(0.0..5.0e4)) {
        let bb = BoundingBox::from_points(&pts).unwrap();
        let p = walk_along(&pts, d).unwrap();
        // Any interpolated point lies inside the waypoint bounding box.
        require!(bb.contains_within(&p, 1e-9));
    }

    fn resample_preserves_endpoints(pts in arb_points(16), n in int(2usize..128)) {
        let r = resample_uniform(&pts, n).unwrap();
        require_eq!(r.len(), n);
        require!(r[0].distance(&pts[0]) < 1e-9);
        require!(r[n - 1].distance(pts.last().unwrap()) < 1e-9);
    }

    fn resample_length_close_to_original(pts in arb_points(8)) {
        // A dense resampling's polyline length never exceeds the
        // original (shortcuts only) and converges towards it.
        let r = resample_uniform(&pts, 512).unwrap();
        let orig = path_length(&pts);
        let res = path_length(&r);
        require!(res <= orig + 1e-6);
    }
}

fn arb_small_points(lo: usize, hi: usize) -> Gen<Vec<Point>> {
    vec(
        tuple((float(-100.0..100.0), float(-100.0..100.0))).map(|(x, y)| Point::new(x, y)),
        lo..hi,
    )
}

props! {
    /// Convex hull invariants: contains every input point, hull of the
    /// hull is the hull, and its area never exceeds the bounding box's.
    fn convex_hull_invariants(pts in arb_small_points(1, 60)) {
        use hpm_geo::{convex_contains, convex_hull, polygon_area, BoundingBox};
        let hull = convex_hull(&pts);
        for p in &pts {
            require!(convex_contains(&hull, p), "point {p} escapes its hull");
        }
        // Idempotent.
        let again = convex_hull(&hull);
        require_eq!(&again, &hull);
        // Orientation and area bound.
        let area = polygon_area(&hull);
        require!(area >= 0.0, "clockwise hull");
        let bbox = BoundingBox::from_points(&pts).unwrap();
        require!(area <= bbox.area() + 1e-9);
        // Hull vertices are input points.
        for v in &hull {
            require!(pts.iter().any(|p| p == v));
        }
    }

    /// RDP never moves a surviving vertex and keeps the endpoints.
    fn rdp_invariants(pts in arb_small_points(2, 50), eps in float(0.0..20.0)) {
        use hpm_geo::{point_segment_distance, simplify_rdp};
        let s = simplify_rdp(&pts, eps);
        require!(!s.is_empty());
        require_eq!(s[0], pts[0]);
        require_eq!(*s.last().unwrap(), *pts.last().unwrap());
        // Every kept vertex is an input vertex, in input order.
        let mut cursor = 0usize;
        for v in &s {
            let found = pts[cursor..].iter().position(|p| p == v);
            require!(found.is_some(), "vertex {v} out of order");
            cursor += found.unwrap();
        }
        // Every dropped point stays within eps of the simplified chain.
        if s.len() >= 2 {
            for p in &pts {
                let d = s
                    .windows(2)
                    .map(|w| point_segment_distance(p, &w[0], &w[1]))
                    .fold(f64::INFINITY, f64::min);
                require!(d <= eps + 1e-9, "deviation {d} > {eps}");
            }
        }
    }
}
