//! Property-based invariants for the geometry substrate.

use hpm_geo::{path_length, resample_uniform, walk_along, BoundingBox, Point};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1.0e4..1.0e4_f64, -1.0e4..1.0e4_f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(arb_point(), 1..max)
}

proptest! {
    #[test]
    fn distance_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    #[test]
    fn distance_symmetry_and_identity(a in arb_point(), b in arb_point()) {
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        prop_assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn bbox_contains_all_inputs(pts in arb_points(64)) {
        let bb = BoundingBox::from_points(&pts).unwrap();
        for p in &pts {
            prop_assert!(bb.contains(p));
        }
    }

    #[test]
    fn bbox_center_inside(pts in arb_points(64)) {
        let bb = BoundingBox::from_points(&pts).unwrap();
        prop_assert!(bb.contains(&bb.center()));
    }

    #[test]
    fn bbox_union_is_superset(p1 in arb_points(16), p2 in arb_points(16)) {
        let a = BoundingBox::from_points(&p1).unwrap();
        let b = BoundingBox::from_points(&p2).unwrap();
        let u = a.union(&b);
        for p in p1.iter().chain(p2.iter()) {
            prop_assert!(u.contains(p));
        }
    }

    #[test]
    fn walk_along_stays_on_path_extent(pts in arb_points(16), d in 0.0..5.0e4_f64) {
        let bb = BoundingBox::from_points(&pts).unwrap();
        let p = walk_along(&pts, d).unwrap();
        // Any interpolated point lies inside the waypoint bounding box.
        prop_assert!(bb.contains_within(&p, 1e-9));
    }

    #[test]
    fn resample_preserves_endpoints(pts in arb_points(16), n in 2usize..128) {
        let r = resample_uniform(&pts, n).unwrap();
        prop_assert_eq!(r.len(), n);
        prop_assert!(r[0].distance(&pts[0]) < 1e-9);
        prop_assert!(r[n - 1].distance(pts.last().unwrap()) < 1e-9);
    }

    #[test]
    fn resample_length_close_to_original(pts in arb_points(8)) {
        // A dense resampling's polyline length never exceeds the
        // original (shortcuts only) and converges towards it.
        let r = resample_uniform(&pts, 512).unwrap();
        let orig = path_length(&pts);
        let res = path_length(&r);
        prop_assert!(res <= orig + 1e-6);
    }
}

proptest! {
    /// Convex hull invariants: contains every input point, hull of the
    /// hull is the hull, and its area never exceeds the bounding box's.
    #[test]
    fn convex_hull_invariants(
        pts in proptest::collection::vec(
            (-100.0..100.0_f64, -100.0..100.0_f64).prop_map(|(x, y)| Point::new(x, y)),
            1..60,
        ),
    ) {
        use hpm_geo::{convex_contains, convex_hull, polygon_area, BoundingBox};
        let hull = convex_hull(&pts);
        for p in &pts {
            prop_assert!(convex_contains(&hull, p), "point {p} escapes its hull");
        }
        // Idempotent.
        let again = convex_hull(&hull);
        prop_assert_eq!(&again, &hull);
        // Orientation and area bound.
        let area = polygon_area(&hull);
        prop_assert!(area >= 0.0, "clockwise hull");
        let bbox = BoundingBox::from_points(&pts).unwrap();
        prop_assert!(area <= bbox.area() + 1e-9);
        // Hull vertices are input points.
        for v in &hull {
            prop_assert!(pts.iter().any(|p| p == v));
        }
    }

    /// RDP never moves a surviving vertex and keeps the endpoints.
    #[test]
    fn rdp_invariants(
        pts in proptest::collection::vec(
            (-100.0..100.0_f64, -100.0..100.0_f64).prop_map(|(x, y)| Point::new(x, y)),
            2..50,
        ),
        eps in 0.0..20.0_f64,
    ) {
        use hpm_geo::{point_segment_distance, simplify_rdp};
        let s = simplify_rdp(&pts, eps);
        prop_assert!(!s.is_empty());
        prop_assert_eq!(s[0], pts[0]);
        prop_assert_eq!(*s.last().unwrap(), *pts.last().unwrap());
        // Every kept vertex is an input vertex, in input order.
        let mut cursor = 0usize;
        for v in &s {
            let found = pts[cursor..].iter().position(|p| p == v);
            prop_assert!(found.is_some(), "vertex {v} out of order");
            cursor += found.unwrap();
        }
        // Every dropped point stays within eps of the simplified chain.
        if s.len() >= 2 {
            for p in &pts {
                let d = s
                    .windows(2)
                    .map(|w| point_segment_distance(p, &w[0], &w[1]))
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(d <= eps + 1e-9, "deviation {d} > {eps}");
            }
        }
    }
}
