//! Property tests for the histogram invariants the operator surface
//! relies on: bucket counts always sum to the recorded sample count,
//! and snapshot merge is associative (with the empty snapshot as
//! identity), so sharded or per-interval snapshots can be combined in
//! any order.

use hpm_check::prelude::*;
use hpm_obs::{HistogramSnapshot, Unit};

/// Samples spanning several bucket magnitudes, including the 0 and
/// `u64::MAX` edge values that clamp into the first and last bucket.
fn arb_samples() -> Gen<Vec<u64>> {
    vec(
        tuple((int(0u8..3), int(0u64..1_000_000))).map(|(kind, raw)| match kind {
            0 => raw % 16,
            1 => raw,
            _ => u64::MAX - raw % 4,
        }),
        0..60,
    )
}

/// Folds samples into a detached snapshot the same way the live
/// `Histogram` does (modulo atomics).
fn build(name: &str, values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::empty(name, Unit::Count);
    for &v in values {
        h.buckets[(63 - v.max(1).leading_zeros() as usize).min(hpm_obs::BUCKETS - 1)] += 1;
        h.count += 1;
        h.sum = h.sum.wrapping_add(v);
        h.min = h.min.min(v);
        h.max = h.max.max(v);
    }
    h
}

props! {
    fn live_histogram_buckets_sum_to_count(values in arb_samples()) {
        // One registered histogram per property; cases within a
        // property run sequentially, so reset-then-record is safe.
        hpm_obs::enable();
        let h = hpm_obs::registry().histogram("obs.props.live", Unit::Count);
        h.reset();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        require_eq!(snap.buckets.iter().sum::<u64>(), values.len() as u64);
        require_eq!(snap.count, values.len() as u64);
        require_eq!(
            snap.sum,
            values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v))
        );
        if let Some(&min) = values.iter().min() {
            require_eq!(snap.min, min);
            require_eq!(snap.max, *values.iter().max().expect("non-empty"));
        } else {
            require_eq!(snap.min, u64::MAX);
            require_eq!(snap.max, 0);
        }
    }

    fn merge_is_associative(a in arb_samples(), b in arb_samples(), c in arb_samples()) {
        let (ha, hb, hc) = (build("a", &a), build("a", &b), build("a", &c));
        let left = ha.merge(&hb).merge(&hc);
        let right = ha.merge(&hb.merge(&hc));
        require_eq!(left, right);
    }

    fn merge_agrees_with_concatenation(a in arb_samples(), b in arb_samples()) {
        let merged = build("m", &a).merge(&build("m", &b));
        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        require_eq!(merged, build("m", &concat));
    }

    fn empty_is_merge_identity(a in arb_samples()) {
        let h = build("i", &a);
        let empty = HistogramSnapshot::empty("i", Unit::Count);
        require_eq!(h.merge(&empty), h);
        require_eq!(empty.merge(&h).buckets, h.buckets);
        require_eq!(empty.merge(&h).count, h.count);
    }

    fn quantiles_are_ordered_and_bounded(a in arb_samples()) {
        assume!(!a.is_empty());
        let h = build("q", &a);
        let (p50, p99, p100) = (h.quantile(0.5), h.quantile(0.99), h.quantile(1.0));
        require!(p50 <= p99 && p99 <= p100);
        require!(p100 <= h.max);
        // Each quantile upper-bounds at least one real sample.
        require!(a.iter().any(|&v| v <= p50));
    }
}
