//! Observability for the serving path (extension beyond the paper): a
//! thread-local span stack with monotonic timing, atomic
//! counters/gauges, and fixed-bucket latency/value histograms behind a
//! near-zero-cost disabled path.
//!
//! The paper motivates its index with per-stage cost breakdowns
//! (Fig. 10's query response time, Fig. 11b's nodes-visited search
//! cost); this crate makes those breakdowns available *in production*
//! rather than only in the bench harness. No registry crates exist on
//! the offline dependency list (no `tracing`, no `metrics`), so
//! everything here is `std`-only.
//!
//! Instrumentation is **off by default** and globally switched by one
//! atomic flag: while disabled, a counter update is a single relaxed
//! load and branch, and a span neither reads the clock nor touches
//! thread-local state. Call [`enable`] (the CLI's `--metrics` flags
//! and `HPM_OBS=1` in the bench harness do) and the same call sites
//! start recording.
//!
//! ```
//! use hpm_obs as obs;
//!
//! obs::enable();
//! {
//!     let _span = obs::span!("doc.example.op");
//!     obs::counter!("doc.example.hits").add(1);
//!     obs::histogram!("doc.example.batch").record(17);
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter("doc.example.hits"), Some(1));
//! assert!(snap.to_json().contains("doc.example.op"));
//! obs::disable();
//! ```
//!
//! Naming convention: `crate.module.op`, lowercase, dot-separated (see
//! `docs/OBSERVABILITY.md` for the full catalogue and
//! `CONTRIBUTING.md` for when to add a counter vs a histogram).

pub mod json;
mod metrics;
mod snapshot;
mod span;

pub use metrics::{registry, Counter, Gauge, Histogram, Registry, Unit, BUCKETS};
pub use snapshot::{snapshot, HistogramSnapshot, MetricsSnapshot};
pub use span::{capture, SpanGuard, SpanNode};

use std::sync::atomic::{AtomicBool, Ordering};

/// The global instrumentation switch. Relaxed is enough: metrics are
/// monotone diagnostics, not synchronisation.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns instrumentation on process-wide.
#[inline]
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns instrumentation off process-wide. Already-recorded values
/// stay in the registry (use [`reset`] to zero them).
#[inline]
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether instrumentation is currently on. This is the only cost the
/// disabled path pays at every call site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every registered counter, gauge, and histogram (the metrics
/// stay registered). Intended for test harnesses and long-lived
/// servers emitting per-interval deltas; concurrent recorders may land
/// updates on either side of the sweep.
pub fn reset() {
    registry().reset();
}

/// An updatable handle to the named [`Counter`], registered on first
/// use and cached in a per-call-site static thereafter.
///
/// The name must be a `&'static str` (conventionally a literal or a
/// `pub const`, so the catalogue in `docs/OBSERVABILITY.md` stays
/// greppable).
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// An updatable handle to the named [`Gauge`]; see [`counter!`].
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// An updatable handle to the named value [`Histogram`] (unit
/// [`Unit::Count`] unless one is given); see [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {
        $crate::histogram!($name, $crate::Unit::Count)
    };
    ($name:expr, $unit:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::registry().histogram($name, $unit))
    }};
}

/// Opens a timed span over the rest of the enclosing block: binds a
/// guard whose drop records the elapsed nanoseconds into the span's
/// latency histogram (unit [`Unit::Nanos`]) and, when a [`capture`] is
/// active on this thread, adds a node to the captured span tree.
///
/// Disabled mode neither reads the clock nor creates a guard.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        if $crate::enabled() {
            Some($crate::SpanGuard::enter(
                $name,
                *SLOT.get_or_init(|| $crate::registry().histogram($name, $crate::Unit::Nanos)),
            ))
        } else {
            None
        }
    }};
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    /// Unit tests toggling the global [`super::ENABLED`] flag or
    /// reading the shared registry serialise on this lock so the
    /// default multi-threaded test harness cannot interleave them.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn serial() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggleable() {
        let _guard = test_support::serial();
        disable();
        assert!(!enabled());
        enable();
        assert!(enabled());
        disable();
        assert!(!enabled());
    }

    #[test]
    fn disabled_counter_does_not_record() {
        let _guard = test_support::serial();
        disable();
        let c = counter!("obs.test.disabled_counter");
        c.add(7);
        assert_eq!(c.value(), 0);
        enable();
        c.add(7);
        assert_eq!(c.value(), 7);
        disable();
        c.reset();
    }

    #[test]
    fn disabled_span_is_noop() {
        let _guard = test_support::serial();
        disable();
        let (_, roots) = capture(|| {
            let _s = span!("obs.test.disabled_span");
        });
        assert!(roots.is_empty());
    }

    #[test]
    fn macro_handles_are_cached_per_call_site() {
        let _guard = test_support::serial();
        let a = counter!("obs.test.cached");
        let b = counter!("obs.test.cached");
        // Two call sites, one underlying metric.
        assert!(std::ptr::eq(a, b));
    }
}
