//! `obs-json-check`: validates that a metrics snapshot JSON document
//! (from `hpm-cli predict --metrics-json`) has the documented shape,
//! and optionally that named metrics exist and are nonzero.
//!
//! Usage:
//!
//! ```text
//! obs-json-check <FILE|-> [counter:NAME]... [any-counter:A,B,...]... [histogram:NAME]...
//! ```
//!
//! `-` reads stdin. `counter:NAME` requires that counter to exist with
//! a nonzero total; `any-counter:A,B` requires at least one of the
//! listed counters to be nonzero (e.g. FQP-or-BQP dispatch);
//! `histogram:NAME` requires that histogram to exist with at least one
//! sample. Exits 0 when every check passes, 1 otherwise, printing one
//! line per failure. Used by `scripts/verify.sh`.

use hpm_obs::json::{self, Json};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((source, requirements)) = args.split_first() else {
        eprintln!(
            "usage: obs-json-check <FILE|-> [counter:NAME] [any-counter:A,B] [histogram:NAME]..."
        );
        return ExitCode::FAILURE;
    };

    let input = match read_source(source) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("obs-json-check: cannot read {source}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let doc = match json::parse(&input) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("obs-json-check: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = Vec::new();
    check_shape(&doc, &mut failures);
    if failures.is_empty() {
        for req in requirements {
            check_requirement(&doc, req, &mut failures);
        }
    }

    if failures.is_empty() {
        println!("obs-json-check: ok ({} checks)", 1 + requirements.len());
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("obs-json-check: {f}");
        }
        ExitCode::FAILURE
    }
}

fn read_source(source: &str) -> std::io::Result<String> {
    if source == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(source)
    }
}

/// The documented snapshot schema: `counters` and `gauges` are objects
/// of numbers; `histograms` is an array of objects carrying name,
/// unit, count, sum, min, max, and `[upper_bound, count]` buckets.
fn check_shape(doc: &Json, failures: &mut Vec<String>) {
    let Some(_) = doc.as_object() else {
        failures.push("top level is not an object".into());
        return;
    };
    for section in ["counters", "gauges"] {
        match doc.get(section).and_then(Json::as_object) {
            None => failures.push(format!("missing object field {section:?}")),
            Some(map) => {
                for (name, v) in map {
                    if v.as_f64().is_none() {
                        failures.push(format!("{section}[{name:?}] is not a number"));
                    }
                }
            }
        }
    }
    let Some(hists) = doc.get("histograms").and_then(Json::as_array) else {
        failures.push("missing array field \"histograms\"".into());
        return;
    };
    for (i, h) in hists.iter().enumerate() {
        let label = h
            .get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| format!("#{i}"));
        if h.get("name").and_then(Json::as_str).is_none() {
            failures.push(format!("histogram {label}: missing string \"name\""));
        }
        match h.get("unit").and_then(Json::as_str) {
            Some("count" | "ns" | "bytes") => {}
            _ => failures.push(format!("histogram {label}: unit is not count/ns/bytes")),
        }
        for field in ["count", "sum", "min", "max", "p50", "p99"] {
            if h.get(field).and_then(Json::as_f64).is_none() {
                failures.push(format!("histogram {label}: missing number {field:?}"));
            }
        }
        match h.get("buckets").and_then(Json::as_array) {
            None => failures.push(format!("histogram {label}: missing array \"buckets\"")),
            Some(buckets) => {
                let mut bucket_total = 0.0;
                for b in buckets {
                    match b.as_array() {
                        Some([upper, count])
                            if upper.as_f64().is_some() && count.as_f64().is_some() =>
                        {
                            bucket_total += count.as_f64().expect("checked");
                        }
                        _ => {
                            failures
                                .push(format!("histogram {label}: bucket is not [upper, count]"));
                            break;
                        }
                    }
                }
                let count = h.get("count").and_then(Json::as_f64).unwrap_or(-1.0);
                if count >= 0.0 && bucket_total != count {
                    failures.push(format!(
                        "histogram {label}: buckets sum to {bucket_total} but count is {count}"
                    ));
                }
            }
        }
    }
}

fn counter_value(doc: &Json, name: &str) -> Option<f64> {
    doc.get("counters")?.get(name)?.as_f64()
}

fn check_requirement(doc: &Json, req: &str, failures: &mut Vec<String>) {
    match req.split_once(':') {
        Some(("counter", name)) => match counter_value(doc, name) {
            None => failures.push(format!("required counter {name:?} is absent")),
            Some(v) if v <= 0.0 => failures.push(format!("required counter {name:?} is zero")),
            Some(_) => {}
        },
        Some(("any-counter", names)) => {
            let hit = names
                .split(',')
                .any(|n| counter_value(doc, n).is_some_and(|v| v > 0.0));
            if !hit {
                failures.push(format!("none of the counters {names:?} is nonzero"));
            }
        }
        Some(("histogram", name)) => {
            let count = doc
                .get("histograms")
                .and_then(Json::as_array)
                .and_then(|hs| {
                    hs.iter()
                        .find(|h| h.get("name").and_then(Json::as_str) == Some(name))
                })
                .and_then(|h| h.get("count"))
                .and_then(Json::as_f64);
            match count {
                None => failures.push(format!("required histogram {name:?} is absent")),
                Some(c) if c <= 0.0 => {
                    failures.push(format!("required histogram {name:?} has no samples"));
                }
                Some(_) => {}
            }
        }
        _ => failures.push(format!(
            "unknown requirement {req:?} (want counter:/any-counter:/histogram:)"
        )),
    }
}
