//! A minimal JSON value, parser, and string escaper — just enough for
//! the snapshot render, its round-trip tests, and the `obs-json-check`
//! shape checker. No registry JSON crate is on the offline dependency
//! list, so this stays in-tree and `std`-only.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects use a [`BTreeMap`] so iteration order
/// is deterministic; numbers are `f64` (metric values fit: counters
/// are exact up to 2^53, far beyond anything a session records).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Where and why parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What the parser expected there.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing content rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("end of input"));
    }
    Ok(value)
}

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through
/// as UTF-8).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("a JSON literal (true/false/null)"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "'{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "':' after object key")?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("four hex digits after \\u"))?;
                            // Surrogates would need pairing; the
                            // snapshot render never emits them.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("a valid escape character")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("no raw control characters")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| ParseError {
                offset: start,
                message: "a valid number",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\n\"y\""}, "d": true, "e": null}"#)
            .expect("valid");
        assert_eq!(
            doc.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(
            doc.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\n\"y\"")
        );
        assert_eq!(doc.get("d"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let original = "line\none\t\"quoted\" back\\slash \u{1} café";
        let wrapped = format!("\"{}\"", escape(original));
        assert_eq!(parse(&wrapped).unwrap().as_str(), Some(original));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Object(BTreeMap::new()));
        assert_eq!(parse("[ ]").unwrap(), Json::Array(Vec::new()));
    }
}
