//! The metric primitives and the process-wide registry.
//!
//! All three primitives are lock-free on the update path (plain atomic
//! ops with relaxed ordering) and gate on [`crate::enabled`] so the
//! disabled path costs one load and branch. Registration — the only
//! locking operation — happens once per call site via the macros in
//! the crate root.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Relaxed everywhere: metrics are diagnostics, not synchronisation.
const ORD: Ordering = Ordering::Relaxed;

/// Number of histogram buckets: powers of two from `[0, 2)` up to an
/// open-ended `[2^39, ∞)` overflow bucket — 2^39 ns ≈ 9 minutes, far
/// beyond any per-query stage, and comfortably past any candidate-set
/// or byte count this system produces.
pub const BUCKETS: usize = 40;

/// What a histogram's samples measure; fixes how renders label them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless sizes (candidate counts, node visits).
    Count,
    /// Monotonic-clock durations in nanoseconds (span latencies).
    Nanos,
    /// Payload sizes in bytes.
    Bytes,
}

impl Unit {
    /// Stable lowercase label used by both renders.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Nanos => "ns",
            Unit::Bytes => "bytes",
        }
    }
}

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The metric's name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events; a no-op while instrumentation is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, ORD);
        }
    }

    /// The current total.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value.load(ORD)
    }

    /// Zeroes the counter (see [`crate::reset`]).
    pub fn reset(&self) {
        self.value.store(0, ORD);
    }
}

/// A value that can move both ways (live object counts, index sizes).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
}

impl Gauge {
    fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicI64::new(0),
        }
    }

    /// The metric's name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the gauge; a no-op while instrumentation is disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, ORD);
        }
    }

    /// Moves the gauge by `delta` (negative to decrease); a no-op
    /// while instrumentation is disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.value.fetch_add(delta, ORD);
        }
    }

    /// The current value.
    #[inline]
    pub fn value(&self) -> i64 {
        self.value.load(ORD)
    }

    /// Zeroes the gauge (see [`crate::reset`]).
    pub fn reset(&self) {
        self.value.store(0, ORD);
    }
}

/// A fixed-bucket power-of-two histogram.
///
/// Bucket `i` counts samples `v` with `floor(log2(max(v, 1))) == i`,
/// clamped into the last bucket — i.e. `[0, 2)`, `[2, 4)`, `[4, 8)`, …
/// with an open-ended overflow bucket. Two buckets per octave would
/// halve the error but double the footprint; one per octave is enough
/// to tell a 2 µs stage from a 200 µs one, which is what per-stage
/// latency attribution needs.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    unit: Unit,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Wrapping sum of all samples (2^64 ns ≈ 584 years: wrap is
    /// theoretical, and wrapping keeps snapshot merge associative).
    sum: AtomicU64,
    /// `u64::MAX` sentinel while empty.
    min: AtomicU64,
    max: AtomicU64,
}

/// The bucket a value lands in.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    (63 - v.max(1).leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` as rendered (`u64::MAX` for the
/// overflow bucket).
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

impl Histogram {
    /// A fresh, unregistered histogram. Library code should go through
    /// the [`crate::histogram!`] / [`crate::span!`] macros; this is
    /// public for tests and custom collectors.
    pub fn new(name: &'static str, unit: Unit) -> Self {
        Histogram {
            name,
            unit,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The metric's name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// What the samples measure.
    #[inline]
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Records one sample; a no-op while instrumentation is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.record_always(v);
        }
    }

    /// Records one sample regardless of the global flag (span guards
    /// check the flag once at entry and must not lose their exit).
    #[inline]
    pub(crate) fn record_always(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, ORD);
        self.count.fetch_add(1, ORD);
        self.sum.fetch_add(v, ORD);
        self.min.fetch_min(v, ORD);
        self.max.fetch_max(v, ORD);
    }

    /// A coherent-enough copy of the current state (buckets are read
    /// one by one; concurrent recorders may straddle the read).
    pub fn snapshot(&self) -> crate::HistogramSnapshot {
        crate::HistogramSnapshot {
            name: self.name.to_string(),
            unit: self.unit,
            count: self.count.load(ORD),
            sum: self.sum.load(ORD),
            min: self.min.load(ORD),
            max: self.max.load(ORD),
            buckets: std::array::from_fn(|i| self.buckets[i].load(ORD)),
        }
    }

    /// Zeroes the histogram (see [`crate::reset`]).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, ORD);
        }
        self.count.store(0, ORD);
        self.sum.store(0, ORD);
        self.min.store(u64::MAX, ORD);
        self.max.store(0, ORD);
    }
}

/// The process-wide metric registry: name → leaked `&'static` metric.
///
/// Metrics live for the process lifetime (they are deliberately
/// leaked), so handles can be cached in call-site statics and updated
/// without any locking.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    gauges: Mutex<Vec<&'static Gauge>>,
    histograms: Mutex<Vec<&'static Histogram>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut v = lock(&self.counters);
        if let Some(c) = v.iter().find(|c| c.name == name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new(name)));
        v.push(c);
        c
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut v = lock(&self.gauges);
        if let Some(g) = v.iter().find(|g| g.name == name) {
            return g;
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new(name)));
        v.push(g);
        g
    }

    /// The histogram registered under `name`, creating it (with
    /// `unit`) on first use.
    ///
    /// # Panics
    /// Panics when the name is already registered under a different
    /// unit — one name must mean one thing in every render.
    pub fn histogram(&self, name: &'static str, unit: Unit) -> &'static Histogram {
        let mut v = lock(&self.histograms);
        if let Some(h) = v.iter().find(|h| h.name == name) {
            assert!(
                h.unit == unit,
                "histogram `{name}` registered under two units ({:?} vs {unit:?})",
                h.unit
            );
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new(name, unit)));
        v.push(h);
        h
    }

    pub(crate) fn visit(
        &self,
        mut counters: impl FnMut(&'static Counter),
        mut gauges: impl FnMut(&'static Gauge),
        mut histograms: impl FnMut(&'static Histogram),
    ) {
        for c in lock(&self.counters).iter() {
            counters(c);
        }
        for g in lock(&self.gauges).iter() {
            gauges(g);
        }
        for h in lock(&self.histograms).iter() {
            histograms(h);
        }
    }

    pub(crate) fn reset(&self) {
        self.visit(Counter::reset, Gauge::reset, Histogram::reset);
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_cover_their_index() {
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i) + 1), i + 1);
        }
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_records_and_resets() {
        let _guard = test_support::serial();
        crate::enable();
        let h = Histogram::new("obs.test.hist", Unit::Count);
        for v in [0, 1, 5, 5, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1011);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
        h.reset();
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.max), (0, 0, 0));
        crate::disable();
    }

    #[test]
    fn gauge_moves_both_ways() {
        let _guard = test_support::serial();
        crate::enable();
        let g = registry().gauge("obs.test.gauge");
        g.reset();
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
        g.reset();
        crate::disable();
    }

    #[test]
    fn registry_dedupes_by_name() {
        let a = registry().counter("obs.test.dedupe");
        let b = registry().counter("obs.test.dedupe");
        assert!(std::ptr::eq(a, b));
        let h1 = registry().histogram("obs.test.dedupe_h", Unit::Bytes);
        let h2 = registry().histogram("obs.test.dedupe_h", Unit::Bytes);
        assert!(std::ptr::eq(h1, h2));
    }

    #[test]
    #[should_panic(expected = "two units")]
    fn unit_conflict_rejected() {
        registry().histogram("obs.test.unit_conflict", Unit::Bytes);
        registry().histogram("obs.test.unit_conflict", Unit::Nanos);
    }
}
