//! Point-in-time copies of the registry with stable text and JSON
//! renders — the operator surface documented in
//! `docs/OBSERVABILITY.md`.

use crate::json::escape;
use crate::metrics::{bucket_upper_bound, registry, Unit, BUCKETS};
use std::fmt;

/// A copied histogram: plain integers, safe to merge and serialise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// The metric's name.
    pub name: String,
    /// What the samples measure.
    pub unit: Unit,
    /// Samples recorded.
    pub count: u64,
    /// Wrapping sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` sentinel while empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Power-of-two buckets; bucket `i` counts samples with
    /// `floor(log2(max(v, 1))) == i`, clamped into the last bucket.
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty(name: impl Into<String>, unit: Unit) -> Self {
        HistogramSnapshot {
            name: name.into(),
            unit,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Combines two snapshots of the same metric (shards, intervals,
    /// processes). Counts and sums add (the sum wraps, which keeps the
    /// operation associative), extrema widen. The left-hand name/unit
    /// win; merging different metrics is a caller bug but not UB.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.name.clone(),
            unit: self.unit,
            count: self.count.wrapping_add(other.count),
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            buckets: std::array::from_fn(|i| self.buckets[i].wrapping_add(other.buckets[i])),
        }
    }

    /// Upper-bound estimate of the `q`-quantile (0 ≤ q ≤ 1): the
    /// inclusive upper bound of the first bucket whose cumulative
    /// count reaches `q · count` (so the true quantile is at most one
    /// power of two below). 0 while empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                // The max is a tighter bound than the last bucket's lid.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean sample value (0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn render_json(&self, out: &mut String) {
        use std::fmt::Write;
        let min = if self.count == 0 { 0 } else { self.min };
        write!(
            out,
            "{{\"name\":\"{}\",\"unit\":\"{}\",\"count\":{},\"sum\":{},\"min\":{min},\"max\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
            escape(&self.name),
            self.unit.as_str(),
            self.count,
            self.sum,
            self.max,
            self.quantile(0.5),
            self.quantile(0.99),
        )
        .expect("write to String");
        let mut first = true;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            write!(out, "[{},{b}]", bucket_upper_bound(i)).expect("write to String");
        }
        out.push_str("]}");
    }
}

/// Everything the registry held at one instant, name-sorted so renders
/// are stable across runs and diffable across builds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, total)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(String, i64)>,
    /// Every registered histogram — value histograms (unit `count` /
    /// `bytes`) and span latency histograms (unit `ns`) alike.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's total, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// A gauge's value, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A histogram's snapshot, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The stable JSON render (schema documented in
    /// `docs/OBSERVABILITY.md`; shape-checked by `obs-json-check`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(256 + 128 * self.histograms.len());
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "\"{}\":{v}", escape(name)).expect("write to String");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "\"{}\":{v}", escape(name)).expect("write to String");
        }
        out.push_str("},\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            h.render_json(&mut out);
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    /// The stable text render: one line per metric, sections in
    /// counter/gauge/histogram order, names sorted.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "counter    {name:<40} {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "gauge      {name:<40} {v}")?;
        }
        for h in &self.histograms {
            writeln!(
                f,
                "histogram  {:<40} unit={} count={} mean={:.1} p50<={} p99<={} max={}",
                h.name,
                h.unit.as_str(),
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max,
            )?;
        }
        Ok(())
    }
}

/// Copies every registered metric out of the process-wide registry.
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    registry().visit(
        |c| snap.counters.push((c.name().to_string(), c.value())),
        |g| snap.gauges.push((g.name().to_string(), g.value())),
        |h| snap.histograms.push(h.snapshot()),
    );
    snap.counters.sort();
    snap.gauges.sort();
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    fn sample(values: &[u64]) -> HistogramSnapshot {
        let mut h = HistogramSnapshot::empty("h", Unit::Count);
        for &v in values {
            h.buckets[crate::metrics::bucket_index(v)] += 1;
            h.count += 1;
            h.sum = h.sum.wrapping_add(v);
            h.min = h.min.min(v);
            h.max = h.max.max(v);
        }
        h
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let h = sample(&[1, 2, 3, 100]);
        assert!(h.quantile(0.5) >= 2 && h.quantile(0.5) <= 3);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(HistogramSnapshot::empty("e", Unit::Nanos).quantile(0.5), 0);
    }

    #[test]
    fn merge_is_commutative_here() {
        let a = sample(&[1, 2]);
        let b = sample(&[1000]);
        assert_eq!(a.merge(&b).count, 3);
        let (ab, ba) = (a.merge(&b), b.merge(&a));
        assert_eq!(ab.buckets, ba.buckets);
        assert_eq!(ab.sum, ba.sum);
        assert_eq!((ab.min, ab.max), (1, 1000));
    }

    #[test]
    fn snapshot_renders_stable_json_and_text() {
        let _guard = test_support::serial();
        crate::enable();
        crate::counter!("obs.test.snap_counter").add(3);
        crate::gauge!("obs.test.snap_gauge").set(-2);
        crate::histogram!("obs.test.snap_hist").record(9);
        let snap = snapshot();
        crate::disable();

        assert_eq!(snap.counter("obs.test.snap_counter"), Some(3));
        assert_eq!(snap.gauge("obs.test.snap_gauge"), Some(-2));
        assert_eq!(snap.histogram("obs.test.snap_hist").unwrap().count, 1);
        assert!(snap.counter("missing").is_none());

        let text = snap.to_string();
        assert!(text.contains("counter    obs.test.snap_counter"));
        assert!(text.contains("gauge      obs.test.snap_gauge"));

        // The JSON render parses back and carries the same values.
        let json = crate::json::parse(&snap.to_json()).expect("valid JSON");
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("obs.test.snap_counter"))
                .and_then(crate::json::Json::as_f64),
            Some(3.0)
        );
        let hists = json
            .get("histograms")
            .and_then(crate::json::Json::as_array)
            .unwrap();
        assert!(hists.iter().any(
            |h| h.get("name").and_then(crate::json::Json::as_str) == Some("obs.test.snap_hist")
        ));

        // Names come out sorted.
        let names: Vec<&String> = snap.counters.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        crate::reset();
    }
}
