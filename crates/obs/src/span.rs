//! Thread-local timed spans.
//!
//! A span is opened by the [`crate::span!`] macro and closed by its
//! guard's drop: the elapsed monotonic time lands in the span's
//! latency histogram, and — when a [`capture`] is active on the
//! thread — a node is added to the captured span tree. Spans nest
//! lexically (the guard lives to the end of its block), so the capture
//! reconstructs the call structure without any global ordering.

use crate::metrics::Histogram;
use std::cell::RefCell;
use std::time::Instant;

/// One node of a captured span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The span's name (`crate.module.op`).
    pub name: &'static str,
    /// Wall time between the span's open and close, monotonic clock.
    pub duration_ns: u64,
    /// Spans opened (and closed) while this one was open, in
    /// completion order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total spans in this subtree, the node itself included — the
    /// "span budget" a hot-path operation spends.
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::span_count)
            .sum::<usize>()
    }

    /// Depth-first search for a descendant (or self) by name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Open frames of the active capture; `stack[0]` accumulates finished
/// top-level spans, `stack[i > 0]` the finished children of the i-th
/// currently-open span.
struct CaptureState {
    stack: Vec<Vec<SpanNode>>,
}

thread_local! {
    static CAPTURE: RefCell<Option<CaptureState>> = const { RefCell::new(None) };
}

/// Runs `f` while collecting this thread's span tree; returns `f`'s
/// result and the top-level spans closed during the call.
///
/// Spans are only emitted while instrumentation is [`crate::enabled`],
/// so a disabled-mode capture returns an empty tree. A nested capture
/// on the same thread observes nothing (the outer one keeps
/// collecting); spans still open when `f` returns are not reported.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanNode>) {
    let installed = CAPTURE.with(|c| {
        let mut slot = c.borrow_mut();
        if slot.is_some() {
            return false;
        }
        *slot = Some(CaptureState {
            stack: vec![Vec::new()],
        });
        true
    });
    let result = f();
    if !installed {
        return (result, Vec::new());
    }
    let roots = CAPTURE.with(|c| match c.borrow_mut().take() {
        Some(mut state) => std::mem::take(&mut state.stack[0]),
        None => Vec::new(),
    });
    (result, roots)
}

/// RAII guard of one open span; created by [`crate::span!`] only while
/// instrumentation is enabled.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    hist: &'static Histogram,
    start: Instant,
    /// Whether a capture frame was pushed at entry (and must be popped
    /// at drop).
    framed: bool,
}

impl SpanGuard {
    /// Opens the span. Callers go through [`crate::span!`], which
    /// resolves the latency histogram once per call site and skips
    /// this entirely in disabled mode.
    pub fn enter(name: &'static str, hist: &'static Histogram) -> Self {
        let framed = CAPTURE.with(|c| {
            let mut slot = c.borrow_mut();
            match slot.as_mut() {
                Some(state) => {
                    state.stack.push(Vec::new());
                    true
                }
                None => false,
            }
        });
        SpanGuard {
            name,
            hist,
            start: Instant::now(),
            framed,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let duration_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        // The enabled check happened at entry; record unconditionally
        // so a span straddling a disable() still closes its histogram.
        self.hist.record_always(duration_ns);
        if self.framed {
            CAPTURE.with(|c| {
                let mut slot = c.borrow_mut();
                // The capture may have ended while this span was open;
                // its frame died with the capture state then.
                if let Some(state) = slot.as_mut() {
                    if state.stack.len() > 1 {
                        let children = state.stack.pop().expect("non-empty stack");
                        let parent = state.stack.last_mut().expect("root frame");
                        parent.push(SpanNode {
                            name: self.name,
                            duration_ns,
                            children,
                        });
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    #[test]
    fn capture_reconstructs_nesting() {
        let _guard = test_support::serial();
        crate::enable();
        let (value, roots) = capture(|| {
            let _outer = crate::span!("obs.test.outer");
            {
                let _inner = crate::span!("obs.test.inner");
            }
            {
                let _inner = crate::span!("obs.test.inner2");
            }
            42
        });
        crate::disable();
        assert_eq!(value, 42);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "obs.test.outer");
        let children: Vec<&str> = roots[0].children.iter().map(|c| c.name).collect();
        assert_eq!(children, ["obs.test.inner", "obs.test.inner2"]);
        assert_eq!(roots[0].span_count(), 3);
        assert!(roots[0].find("obs.test.inner2").is_some());
        assert!(roots[0].find("missing").is_none());
        // Durations are monotone: the parent covers its children.
        assert!(roots[0].duration_ns >= roots[0].children[0].duration_ns);
    }

    #[test]
    fn spans_feed_latency_histograms() {
        let _guard = test_support::serial();
        crate::enable();
        {
            let _s = crate::span!("obs.test.latency");
        }
        let h = crate::registry().histogram("obs.test.latency", crate::Unit::Nanos);
        assert!(h.snapshot().count >= 1);
        crate::disable();
        h.reset();
    }

    #[test]
    fn nested_capture_yields_nothing_and_outer_keeps_collecting() {
        let _guard = test_support::serial();
        crate::enable();
        let (_, outer) = capture(|| {
            let (_, inner) = capture(|| {
                let _s = crate::span!("obs.test.nested");
            });
            assert!(inner.is_empty());
        });
        crate::disable();
        assert_eq!(outer.len(), 1);
        assert_eq!(outer[0].name, "obs.test.nested");
    }

    #[test]
    fn sibling_spans_in_one_block_both_record() {
        let _guard = test_support::serial();
        crate::enable();
        let (_, roots) = capture(|| {
            let _a = crate::span!("obs.test.sib_a");
            let _b = crate::span!("obs.test.sib_b");
        });
        crate::disable();
        // _b drops first (reverse declaration order) inside _a's frame.
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "obs.test.sib_a");
        assert_eq!(roots[0].children[0].name, "obs.test.sib_b");
    }
}
