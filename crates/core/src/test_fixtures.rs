//! Shared test fixtures: the paper's Fig. 3 "Jane" world and a
//! synthetic commuter with a 4-offset day.

use crate::{HpmConfig, HybridPredictor, WeightFunction};
use hpm_geo::{BoundingBox, Point};
use hpm_patterns::{
    DiscoveryParams, FrequentRegion, MiningParams, RegionId, RegionSet, TrajectoryPattern,
};
use hpm_trajectory::{TimeOffset, Timestamp, Trajectory};

pub(crate) const COMMUTER_PERIOD: u32 = 4;

/// 100 "days" of period 4: home → road → work → {pub | gym}.
pub(crate) fn commuter_trajectory() -> Trajectory {
    commuter_history(100)
}

/// The commuter world truncated to `days` days.
pub(crate) fn commuter_history(days: usize) -> Trajectory {
    let mut pts = Vec::with_capacity(days * COMMUTER_PERIOD as usize);
    for day in 0..days {
        let jitter = (day % 3) as f64 * 0.2;
        pts.push(Point::new(jitter, 0.0)); // home
        pts.push(Point::new(50.0 + jitter, 0.0)); // road
        pts.push(Point::new(100.0 + jitter, 0.0)); // work
        if day % 2 == 0 {
            pts.push(Point::new(100.0 + jitter, 50.0)); // pub
        } else {
            pts.push(Point::new(jitter, 50.0)); // gym
        }
    }
    Trajectory::from_points(pts)
}

pub(crate) fn commuter_config() -> HpmConfig {
    HpmConfig {
        k: 1,
        distant_threshold: 3,
        time_relaxation: 1,
        weight_fn: WeightFunction::Linear,
        match_margin: 5.0,
        rmf_retrospect: 2,
        tpt_fanout: 8,
    }
}

pub(crate) fn commuter_predictor_with(config: HpmConfig) -> HybridPredictor {
    HybridPredictor::build(
        &commuter_trajectory(),
        &DiscoveryParams {
            period: COMMUTER_PERIOD,
            eps: 2.0,
            min_pts: 3,
        },
        &MiningParams {
            min_support: 2,
            min_confidence: 0.3,
            max_premise_len: 2,
            max_premise_gap: 2,
            max_span: 3,
        },
        config,
    )
}

pub(crate) fn commuter_predictor() -> HybridPredictor {
    commuter_predictor_with(commuter_config())
}

/// Fig. 3's five regions, period 3, boxes of half-width 2.
pub(crate) fn fig3_regions() -> RegionSet {
    let mk = |id: u32, offset: TimeOffset, j: u32, cx: f64, cy: f64| {
        let c = Point::new(cx, cy);
        FrequentRegion {
            id: RegionId(id),
            offset,
            local_index: j,
            centroid: c,
            bbox: BoundingBox {
                min: Point::new(cx - 2.0, cy - 2.0),
                max: Point::new(cx + 2.0, cy + 2.0),
            },
            support: 10,
        }
    };
    RegionSet::new(
        vec![
            mk(0, 0, 0, 0.0, 0.0),  // R0^0 home
            mk(1, 1, 0, 10.0, 0.0), // R1^0 city
            mk(2, 1, 1, 0.0, 10.0), // R1^1 shopping centre
            mk(3, 2, 0, 20.0, 0.0), // R2^0 work
            mk(4, 2, 1, 0.0, 20.0), // R2^1 beach
        ],
        3,
    )
}

/// Fig. 3's four patterns P0..P3 with the paper's confidences.
pub(crate) fn fig3_patterns() -> Vec<TrajectoryPattern> {
    let p = |premise: &[u32], consequence: u32, confidence: f64| TrajectoryPattern {
        premise: premise.iter().map(|&i| RegionId(i)).collect(),
        consequence: RegionId(consequence),
        confidence,
        support: 5,
    };
    vec![
        p(&[0], 1, 0.9),
        p(&[0], 2, 0.8),
        p(&[0, 1], 3, 0.5),
        p(&[0, 2], 4, 0.4),
    ]
}

/// Fig. 3 predictor with a non-distant threshold (`d = 60`): every
/// within-period query goes to FQP.
pub(crate) fn fig3_predictor(k: usize) -> HybridPredictor {
    HybridPredictor::from_parts(
        fig3_regions(),
        fig3_patterns(),
        HpmConfig {
            k,
            distant_threshold: 60,
            time_relaxation: 2,
            weight_fn: WeightFunction::Linear,
            match_margin: 0.5,
            rmf_retrospect: 2,
            tpt_fanout: 8,
        },
    )
}

/// Fig. 3 predictor with `d = 1` and `tε = 1`: every query is distant
/// and goes to BQP.
pub(crate) fn fig3_predictor_d1(k: usize) -> HybridPredictor {
    HybridPredictor::from_parts(
        fig3_regions(),
        fig3_patterns(),
        HpmConfig {
            k,
            distant_threshold: 1,
            time_relaxation: 1,
            weight_fn: WeightFunction::Linear,
            match_margin: 0.5,
            rmf_retrospect: 2,
            tpt_fanout: 8,
        },
    )
}

/// Jane's recent movements through R0^0 then R1^0, current time 1.
pub(crate) fn fig3_query_recent() -> (Vec<Point>, Timestamp) {
    (vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)], 1)
}
