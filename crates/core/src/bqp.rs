//! Backward Query Processing (Algorithm 3): distant-time queries.
//!
//! Recent movements matter little far into the future, so BQP drops
//! the premise constraint (the search key carries an all-ones premise,
//! which intersects every indexed pattern's premise) and instead asks
//! "where does the object usually go *around* `tq`": any pattern whose
//! consequence time offset falls in `[tq − tε, tq + tε]` qualifies.
//! When the interval is empty of candidates it widens by `tε` per round
//! until a pattern is found or the interval reaches back to the current
//! time, at which point the motion function takes over.
//!
//! Candidates are ranked by Eq. 5,
//! `S_p = (S_r · d/(tq − tc) + S_c) · c`: the premise similarity is
//! penalised by how far the query looks ahead, while the consequence
//! similarity `S_c` (Eq. 3) rewards consequences temporally close to
//! `tq`.

use crate::predictor::{rank_answers_into, HybridPredictor};
use crate::scratch::SearchScratch;
use crate::{consequence_similarity, premise_similarity_with, Prediction, PredictiveQuery};
use hpm_patterns::RegionId;
use hpm_tpt::Bitmap;
use hpm_trajectory::TimeOffset;

/// Retrieves and ranks BQP candidates into `out.answers`; `false`
/// sends the caller to the motion function. Allocation-free once
/// `scratch` is warm.
pub(crate) fn run(
    predictor: &HybridPredictor,
    recent_ids: &[RegionId],
    query: &PredictiveQuery<'_>,
    scratch: &mut SearchScratch,
    out: &mut Prediction,
) -> bool {
    let _span = hpm_obs::span!(crate::metrics::BQP_SPAN);
    let period = predictor.period as i64;
    let t_eps = predictor.config.time_relaxation as i64;
    let tc = query.current_time as i64;
    let tq = query.query_time as i64;
    let SearchScratch {
        cursor,
        qkey,
        rkq,
        scored,
        seen,
    } = scratch;
    predictor
        .key_table
        .premise_key_into(recent_ids.iter().copied(), rkq);

    // The reusable interval key: the all-ones premise (BQP drops the
    // premise constraint) is built once, and each widening round only
    // sets the consequence bits of the *newly covered* interval flanks
    // instead of rebuilding the whole key from scratch.
    qkey.consequence
        .reset(predictor.key_table.consequence_count());
    qkey.premise.reset(predictor.key_table.region_count());
    qkey.premise.set_all();

    let mut i = 1i64;
    let mut covered: Option<(i64, i64)> = None;
    loop {
        let lo = (tq - i * t_eps).max(tc + 1);
        let hi = tq + i * t_eps;
        match covered {
            None => extend(predictor, lo, hi, &mut qkey.consequence),
            Some((plo, phi)) => {
                // [lo, hi] ⊇ [plo, phi]: lo only moves down, hi only up.
                if lo < plo {
                    extend(predictor, lo, plo - 1, &mut qkey.consequence);
                }
                if hi > phi {
                    extend(predictor, phi + 1, hi, &mut qkey.consequence);
                }
            }
        }
        covered = Some((lo, hi));
        if !qkey.consequence.is_zero() {
            let matches = cursor.search_packed(&predictor.packed, qkey);
            if !matches.is_empty() {
                hpm_obs::histogram!(crate::metrics::BQP_CANDIDATES).record(matches.len() as u64);
                hpm_obs::counter!(crate::metrics::BQP_WIDENINGS).add((i - 1) as u64);
                scored.clear();
                score_into(predictor, matches, rkq, tc, tq, scored);
                rank_answers_into(
                    predictor,
                    scored,
                    predictor.config.k,
                    seen,
                    &mut out.answers,
                );
                return true;
            }
        }
        i += 1;
        // Algorithm 3 line 8: stop once the interval reaches back to
        // the current time (also stop when it already spans the whole
        // period and still found nothing).
        if tq - i * t_eps <= tc || (hi - lo) >= period {
            return false;
        }
    }
}

/// Sets the consequence bits for absolute times in `[lo, hi]` (mapped
/// onto period offsets) into the reusable interval key.
fn extend(predictor: &HybridPredictor, lo: i64, hi: i64, consequence: &mut Bitmap) {
    let period = predictor.period as i64;
    let hi = hi.min(lo + period - 1); // a full period covers every offset
    predictor.key_table.extend_consequence_key(
        (lo..=hi).map(|t| (t.rem_euclid(period)) as TimeOffset),
        consequence,
    );
}

/// Eq. 5 scores for each candidate.
fn score_into(
    predictor: &HybridPredictor,
    matches: &[hpm_tpt::Match],
    rkq: &Bitmap,
    tc: i64,
    tq: i64,
    out: &mut Vec<(u32, f64)>,
) {
    let period = predictor.period as i64;
    let t_eps = predictor.config.time_relaxation;
    let d = predictor.config.distant_threshold as f64;
    let tq_offset = tq.rem_euclid(period);
    out.extend(matches.iter().map(|m| {
        let pattern = &predictor.patterns[m.pattern as usize];
        let rk = &predictor.pattern_keys[m.pattern as usize].premise;
        let weights = predictor.weight_table.weights(rk.count_ones());
        let sr = premise_similarity_with(rk, rkq, weights);
        // Temporal distance of the consequence offset to the query
        // offset, on the period circle.
        let t_off = pattern.consequence_offset(&predictor.regions) as i64;
        let delta = (t_off - tq_offset).rem_euclid(period);
        let dist = delta.min(period - delta);
        let sc = consequence_similarity(0, dist, t_eps);
        // Eq. 5: premise similarity penalised by d / (tq − tc) ≤ 1.
        let penalty = (d / (tq - tc) as f64).min(1.0);
        (m.pattern, (sr * penalty + sc) * m.confidence)
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{fig3_predictor_d1, fig3_query_recent};
    use crate::{HpmConfig, Prediction, PredictionSource, WeightFunction};
    use hpm_geo::Point;

    fn ask(p: &crate::HybridPredictor, tc: u64, tq: u64) -> Prediction {
        let (recent, _) = fig3_query_recent();
        p.predict(&PredictiveQuery {
            recent: &recent,
            current_time: tc,
            query_time: tq,
        })
    }

    #[test]
    fn eq5_ranking_by_hand() {
        // d = 1, tε = 1, tc = 1, tq = 5 (offset 2), premise rkq = 00011.
        // Penalty d/(tq−tc) = 1/4.
        //   P0 (R0 -> R1^0, c=0.9): S_r=1, dist(1,2)=1, S_c=1/2
        //       -> (0.25 + 0.5) × 0.9 = 0.675
        //   P1 (R0 -> R1^1, c=0.8): same shape -> 0.75 × 0.8 = 0.600
        //   P2 (R0∧R1^0 -> R2^0, c=0.5): S_r=1, dist 0, S_c=1
        //       -> (0.25 + 1) × 0.5 = 0.625
        //   P3 (R0∧R1^1 -> R2^1, c=0.4): S_r=1/3
        //       -> (1/12 + 1) × 0.4 = 0.4333…
        let p = fig3_predictor_d1(4);
        let pred = ask(&p, 1, 5);
        assert_eq!(pred.source, PredictionSource::BackwardPatterns);
        let order: Vec<u32> = pred.answers.iter().map(|a| a.pattern.unwrap()).collect();
        assert_eq!(order, vec![0, 2, 1, 3]);
        let scores: Vec<f64> = pred.answers.iter().map(|a| a.score).collect();
        assert!((scores[0] - 0.675).abs() < 1e-9, "{scores:?}");
        assert!((scores[1] - 0.625).abs() < 1e-9);
        assert!((scores[2] - 0.600).abs() < 1e-9);
        assert!((scores[3] - (1.0 / 12.0 + 1.0) * 0.4).abs() < 1e-9);
    }

    #[test]
    fn wrapped_offsets_still_match() {
        // Query offset 0 has no consequences; tε = 1 already spans
        // offsets {2, 0, 1} around it on the period circle, so the
        // neighbouring consequences qualify at i = 1.
        let p = fig3_predictor_d1(1);
        let pred = ask(&p, 1, 6); // offset 0
        assert_eq!(pred.source, PredictionSource::BackwardPatterns);
    }

    #[test]
    fn interval_widens_until_pattern_found() {
        // One pattern with consequence at offset 5 in a period of 10;
        // query offset 9 with tε = 1 needs i = 4 widenings to reach it.
        use hpm_geo::BoundingBox;
        use hpm_patterns::{FrequentRegion, RegionSet, TrajectoryPattern};
        let mk = |id: u32, offset: u32, cx: f64| FrequentRegion {
            id: RegionId(id),
            offset,
            local_index: 0,
            centroid: Point::new(cx, cx),
            bbox: BoundingBox {
                min: Point::new(cx - 1.0, cx - 1.0),
                max: Point::new(cx + 1.0, cx + 1.0),
            },
            support: 5,
        };
        let regions = RegionSet::new(vec![mk(0, 0, 0.0), mk(1, 5, 50.0)], 10);
        let patterns = vec![TrajectoryPattern {
            premise: vec![RegionId(0)],
            consequence: RegionId(1),
            confidence: 0.8,
            support: 5,
        }];
        let p = crate::HybridPredictor::from_parts(
            regions,
            patterns,
            HpmConfig {
                k: 1,
                distant_threshold: 1,
                time_relaxation: 1,
                weight_fn: WeightFunction::Linear,
                match_margin: 0.5,
                rmf_retrospect: 2,
                tpt_fanout: 8,
            },
        );
        let recent = [Point::new(0.0, 0.0)];
        let pred = p.predict(&PredictiveQuery {
            recent: &recent,
            current_time: 0,
            query_time: 9,
        });
        assert_eq!(pred.source, PredictionSource::BackwardPatterns);
        assert_eq!(pred.best(), Point::new(50.0, 50.0));
        // The widened candidate sits 4 offsets away: S_c clamps to 0,
        // leaving only the penalised premise term of Eq. 5.
        let expect = (1.0 * (1.0 / 9.0)) * 0.8;
        assert!((pred.answers[0].score - expect).abs() < 1e-9);
    }

    #[test]
    fn no_patterns_at_all_falls_back() {
        use crate::test_fixtures::commuter_config;
        use hpm_patterns::RegionSet;
        let mut cfg = commuter_config();
        cfg.distant_threshold = 1;
        let p = crate::HybridPredictor::from_parts(RegionSet::new(Vec::new(), 3), Vec::new(), cfg);
        let recent = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let pred = p.predict(&PredictiveQuery {
            recent: &recent,
            current_time: 1,
            query_time: 5,
        });
        assert_eq!(pred.source, PredictionSource::MotionFunction);
    }
}
