//! Tuning knobs of the Hybrid Prediction Model.

use crate::WeightFunction;

/// Configuration of the hybrid predictor (§VI and §VII.A defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HpmConfig {
    /// Number of ranked answers to return (`k`; paper default 1).
    pub k: usize,
    /// Distant-time threshold `d` (Definition 2): queries with
    /// `tq − tc >= d` go to Backward Query Processing. Paper: 60.
    pub distant_threshold: u32,
    /// Time relaxation length `tε` of BQP (§VI.C: best at 1 ≤ tε ≤ 3).
    pub time_relaxation: u32,
    /// Premise weight function (§VI.A: linear/quadratic perform best).
    pub weight_fn: WeightFunction,
    /// Margin around a frequent region's bounding box when matching a
    /// query's recent movements to regions (noisy samples near a region
    /// still count as "in" it). A good default is DBSCAN's `Eps`.
    pub match_margin: f64,
    /// Retrospect `f` of the RMF fallback.
    pub rmf_retrospect: usize,
    /// Fanout of the Trajectory Pattern Tree.
    pub tpt_fanout: usize,
}

impl Default for HpmConfig {
    /// §VII.A evaluation setting: `k = 1`, `d = 60`, `tε = 2`, linear
    /// weights, margin = `Eps` = 30, RMF retrospect 3, TPT fanout 32.
    fn default() -> Self {
        HpmConfig {
            k: 1,
            distant_threshold: 60,
            time_relaxation: 2,
            weight_fn: WeightFunction::Linear,
            match_margin: 30.0,
            rmf_retrospect: 3,
            tpt_fanout: 32,
        }
    }
}

impl HpmConfig {
    /// Checks parameter consistency.
    ///
    /// # Panics
    /// Panics on `k == 0`, `distant_threshold == 0`,
    /// `time_relaxation == 0`, non-finite/negative margin, zero RMF
    /// retrospect, or a TPT fanout below 4.
    pub fn validate(&self) {
        assert!(self.k >= 1, "k must be at least 1");
        assert!(
            self.distant_threshold >= 1,
            "distant_threshold must be >= 1"
        );
        assert!(self.time_relaxation >= 1, "time_relaxation must be >= 1");
        assert!(
            self.match_margin >= 0.0 && self.match_margin.is_finite(),
            "match_margin must be finite and non-negative"
        );
        assert!(self.rmf_retrospect >= 1, "rmf_retrospect must be >= 1");
        assert!(self.tpt_fanout >= 4, "tpt_fanout must be at least 4");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper() {
        let c = HpmConfig::default();
        assert_eq!(c.k, 1);
        assert_eq!(c.distant_threshold, 60);
        assert_eq!(c.time_relaxation, 2);
        assert_eq!(c.weight_fn, WeightFunction::Linear);
        assert_eq!(c.match_margin, 30.0);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_rejected() {
        HpmConfig {
            k: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "time_relaxation")]
    fn zero_relaxation_rejected() {
        HpmConfig {
            time_relaxation: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "match_margin")]
    fn nan_margin_rejected() {
        HpmConfig {
            match_margin: f64::NAN,
            ..Default::default()
        }
        .validate();
    }
}
