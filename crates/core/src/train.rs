//! Incremental training state: retrain on deltas, not on the full
//! history.
//!
//! [`HybridPredictor::build`] reruns the whole §III–§V pipeline —
//! decomposition, DBSCAN, Apriori, TPT bulk load — over the *entire*
//! movement history on every call. [`TrainerState`] is the persistent
//! counterpart: it remembers where the last training pass stopped and
//! folds only the samples reported since then into per-offset
//! clustering states ([`IncrementalDbscan`]) and persistent support
//! counts ([`SupportCounts`]).
//!
//! The stages mirror the batch pipeline one-to-one so callers can time
//! them individually:
//!
//! 1. [`stage_decompose`](TrainerState::stage_decompose) — the
//!    [`DecomposeCursor`] yields the samples appended since the last
//!    pass, already placed as `(sub, offset, point)` (§III).
//! 2. [`stage_cluster`](TrainerState::stage_cluster) — each sample is
//!    inserted into its offset's density structure; safe insertions
//!    become region visits, anything structural reports
//!    [`DriftKind`] and the caller falls back to a full rebuild.
//! 3. [`stage_mine`](TrainerState::stage_mine) — new visits extend
//!    their sub-trajectory's transaction, support counts absorb the
//!    tails, and the full pattern list is re-derived from counts.
//! 4. [`HybridPredictor::apply_update`] — the derived regions +
//!    patterns are applied to the live index as deltas (confidence
//!    patches, or TPT insert/delete plus one repack).
//!
//! **Equivalence guarantee**: after a successful incremental pass the
//! resulting predictor answers every query exactly like
//! `HybridPredictor::build` over the full history would — same
//! regions, same patterns (ids included), same ranked answers. Drift
//! is detected conservatively, so the guarantee holds *because* every
//! case that could perturb batch output falls back to the batch path
//! (property-tested in `tests/train_props.rs`).

use crate::predictor::max_premise_ones;
use crate::HybridPredictor;
use hpm_clustering::{DbscanParams, DriftKind, IncrementalDbscan, InsertOutcome};
use hpm_geo::mem::{heap_bytes, vec_cap_bytes};
use hpm_geo::MemUse;
use hpm_patterns::{
    DiscoveryParams, FrequentRegion, MiningParams, RegionId, RegionSet, SupportCounts,
    TrajectoryPattern, Transaction,
};
use hpm_tpt::PatternKey;
use hpm_trajectory::{DecomposeCursor, DeltaSample, History, OffsetGroups, TimeOffset, Trajectory};
use std::collections::HashMap;

/// One region visit produced by the clustering stage: sub-trajectory
/// `sub` passed through region `region` at time offset `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewVisit {
    /// Sub-trajectory index (cursor numbering).
    pub sub: usize,
    /// The frequent region visited.
    pub region: RegionId,
    /// Its time offset.
    pub offset: TimeOffset,
}

/// Persistent incremental-training state of one object: the cursor
/// into its history plus per-offset density structures and support
/// counts, all grown in lock-step with the trajectory.
#[derive(Debug, Clone)]
pub struct TrainerState {
    discovery: DiscoveryParams,
    mining: MiningParams,
    cursor: DecomposeCursor,
    /// One clustering state per time offset (`Gₜ` of §III).
    offsets: Vec<IncrementalDbscan>,
    /// `region_index[t][c]` = global region id of offset `t`'s cluster
    /// `c`. Frozen between re-seeds: the safe insertion path never
    /// creates, merges, or renumbers clusters.
    region_index: Vec<Vec<u32>>,
    /// Per-sub-trajectory visit transactions, ascending in offset.
    txs: Vec<Transaction>,
    counts: SupportCounts,
    /// Structure-drift events accumulated across re-seeds.
    drift_events: u64,
}

impl TrainerState {
    /// Empty state (no history consumed yet).
    ///
    /// # Panics
    /// Panics when `discovery.period == 0` or `mining` is inconsistent.
    pub fn new(discovery: DiscoveryParams, mining: MiningParams) -> Self {
        let db = DbscanParams::new(discovery.eps, discovery.min_pts);
        TrainerState {
            cursor: DecomposeCursor::new(discovery.period),
            offsets: (0..discovery.period)
                .map(|_| IncrementalDbscan::seed(Vec::new(), db))
                .collect(),
            region_index: vec![Vec::new(); discovery.period as usize],
            txs: Vec::new(),
            counts: SupportCounts::new(mining),
            discovery,
            mining,
            drift_events: 0,
        }
    }

    /// The discovery parameters in use.
    #[inline]
    pub fn discovery(&self) -> &DiscoveryParams {
        &self.discovery
    }

    /// The mining parameters in use.
    #[inline]
    pub fn mining(&self) -> &MiningParams {
        &self.mining
    }

    /// Samples of `traj` already folded into this state.
    #[inline]
    pub fn consumed(&self) -> usize {
        self.cursor.consumed()
    }

    /// Structure-drift events seen over this state's lifetime
    /// (including before re-seeds).
    #[inline]
    pub fn drift_events(&self) -> u64 {
        self.drift_events
    }

    /// Re-derives the whole state from the full history — the seeding
    /// path taken on first training and after structure drift. The
    /// cursor is caught up to the end of `traj`.
    pub fn seed(&mut self, traj: &Trajectory) {
        self.seed_history(traj)
    }

    /// [`seed`](Self::seed) over any [`History`]: streams the samples
    /// (decoding compressed chunks on the fly) instead of requiring a
    /// raw point slice; the derived state is identical.
    pub fn seed_history<H: History>(&mut self, hist: &H) {
        let drift = self.drift_events + self.offset_drifts();
        let db = DbscanParams::new(self.discovery.eps, self.discovery.min_pts);
        let groups = OffsetGroups::build_history(hist, self.discovery.period);
        self.offsets.clear();
        self.region_index.clear();
        self.txs = vec![Transaction::new(); groups.sub_count()];
        let mut next_id = 0u32;
        // Iterate offsets densely: `stage_cluster` and `regions` index
        // `offsets`/`region_index` by absolute offset, so every offset
        // needs a state even when the seeded history never covered it.
        for t in 0..self.discovery.period {
            let group = groups.group(t as TimeOffset);
            let pts = group.iter().map(|&(_, p)| p).collect();
            let state = IncrementalDbscan::seed(pts, db);
            let mut index = Vec::with_capacity(state.cluster_count());
            for cluster in state.clusters() {
                index.push(next_id);
                for &m in &cluster.members {
                    let (sub, _) = group[m as usize];
                    self.txs[sub].push((next_id, t as TimeOffset));
                }
                next_id += 1;
            }
            self.region_index.push(index);
            self.offsets.push(state);
        }
        self.counts.rebuild(&self.txs);
        self.cursor = DecomposeCursor::new(self.discovery.period);
        self.cursor.catch_up_history(hist);
        self.drift_events = drift;
    }

    /// Stage 1 — §III decomposition delta: the samples appended to
    /// `traj` since the last pass, placed into `(sub, offset)` slots.
    ///
    /// # Panics
    /// Panics when `traj` shrank below the consumed watermark (the
    /// caller must [`seed`](Self::seed) a fresh state instead).
    pub fn stage_decompose(&mut self, traj: &Trajectory) -> Vec<DeltaSample> {
        self.cursor.advance(traj)
    }

    /// [`stage_decompose`](Self::stage_decompose) over any
    /// [`History`]: streams only the not-yet-consumed samples.
    ///
    /// # Panics
    /// Panics when `hist` shrank below the consumed watermark.
    pub fn stage_decompose_history<H: History>(&mut self, hist: &H) -> Vec<DeltaSample> {
        self.cursor.advance_history(hist)
    }

    /// Stage 2 — incremental region discovery: inserts each delta
    /// sample into its offset's density structure. Safe insertions
    /// that land in a cluster become [`NewVisit`]s; any structural
    /// change aborts with the observed [`DriftKind`], poisoning the
    /// state — the caller must fall back to a full rebuild and
    /// [`seed`](Self::seed).
    pub fn stage_cluster(&mut self, samples: &[DeltaSample]) -> Result<Vec<NewVisit>, DriftKind> {
        let mut visits = Vec::new();
        for s in samples {
            let state = &mut self.offsets[s.offset as usize];
            match state.insert(s.point) {
                InsertOutcome::Noise => {}
                InsertOutcome::Member(c) => visits.push(NewVisit {
                    sub: s.sub,
                    region: RegionId(self.region_index[s.offset as usize][c as usize]),
                    offset: s.offset,
                }),
                InsertOutcome::Drift(kind) => {
                    self.drift_events += 1;
                    return Err(kind);
                }
            }
        }
        Ok(visits)
    }

    /// Stage 3 — incremental mining: extends the visited
    /// sub-trajectories' transactions, folds the new tails into the
    /// support counts, and derives the full canonical pattern list
    /// (identical to a batch [`mine`](hpm_patterns::mine) over the
    /// whole history).
    pub fn stage_mine(&mut self, visits: &[NewVisit]) -> Vec<TrajectoryPattern> {
        for v in visits {
            if self.txs.len() <= v.sub {
                self.txs.resize(v.sub + 1, Transaction::new());
            }
            self.txs[v.sub].push((v.region.0, v.offset));
            self.counts.record_tail(&self.txs[v.sub]);
        }
        self.counts.derive()
    }

    /// The current frequent regions, rebuilt from the per-offset
    /// cluster summaries — bit-identical to what batch discovery over
    /// the full consumed history produces.
    pub fn regions(&self) -> RegionSet {
        let mut regions = Vec::new();
        for (t, state) in self.offsets.iter().enumerate() {
            for cluster in state.clusters() {
                debug_assert_eq!(
                    self.region_index[t][cluster.id as usize],
                    regions.len() as u32,
                    "cluster structure changed without drift"
                );
                regions.push(FrequentRegion {
                    id: RegionId(regions.len() as u32),
                    offset: t as TimeOffset,
                    local_index: cluster.id,
                    centroid: cluster.centroid,
                    bbox: cluster.bbox,
                    support: cluster.members.len() as u32,
                });
            }
        }
        RegionSet::new(regions, self.discovery.period)
    }

    fn offset_drifts(&self) -> u64 {
        self.offsets
            .iter()
            .map(IncrementalDbscan::drift_events)
            .sum()
    }
}

impl MemUse for TrainerState {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + heap_bytes(&self.offsets)
            + self.region_index.capacity() * std::mem::size_of::<Vec<u32>>()
            + self.region_index.iter().map(vec_cap_bytes).sum::<usize>()
            + self.txs.capacity() * std::mem::size_of::<Transaction>()
            + self.txs.iter().map(vec_cap_bytes).sum::<usize>()
            + heap_bytes(&self.counts)
    }
}

/// How [`HybridPredictor::apply_update`] absorbed a retrain result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateTier {
    /// Pattern key set unchanged: confidences patched in place, no
    /// repack.
    Confidences,
    /// Patterns added/removed: TPT deltas plus one repack.
    Deltas {
        /// Patterns inserted.
        added: usize,
        /// Patterns deleted.
        removed: usize,
    },
    /// Vocabulary changed (region count or consequence offsets): full
    /// index re-assembly from parts (no re-mining).
    Rebuild,
}

impl HybridPredictor {
    /// Applies a retrain result — fresh regions and the full derived
    /// pattern list — to this predictor as *deltas* against the live
    /// TPT, producing a new predictor equivalent to
    /// [`from_parts`](Self::from_parts) over the same inputs:
    ///
    /// * same `(premise, consequence)` key set → pattern ids are
    ///   unchanged, confidences are patched in the tree and the packed
    ///   image, no repack ([`UpdateTier::Confidences`]);
    /// * keys added/removed → removed patterns are deleted, surviving
    ///   payload ids are remapped to the new canonical numbering, new
    ///   patterns inserted, then **one** repack covers the whole batch
    ///   ([`UpdateTier::Deltas`]) — the amortised-repack policy;
    /// * region count or consequence-offset vocabulary changed → the
    ///   key encoding itself is stale and the index is re-assembled
    ///   with [`from_parts`](Self::from_parts)
    ///   ([`UpdateTier::Rebuild`]; still no re-discovery/re-mining).
    ///
    /// # Panics
    /// Panics when a pattern fails validation against `regions` (only
    /// reachable on the rebuild tier; delta tiers reuse validated
    /// keys).
    pub fn apply_update(
        &self,
        regions: RegionSet,
        patterns: Vec<TrajectoryPattern>,
    ) -> (HybridPredictor, UpdateTier) {
        let _span = hpm_obs::span!(crate::metrics::APPLY_UPDATE_SPAN);
        let vocabulary_unchanged = regions.len() == self.regions.len()
            && regions.period() == self.period
            && patterns.iter().all(|p| {
                self.key_table
                    .time_id(p.consequence_offset(&regions))
                    .is_some()
            });
        if !vocabulary_unchanged {
            let rebuilt = Self::from_parts(regions, patterns, self.config);
            return (rebuilt, UpdateTier::Rebuild);
        }

        let same_keys = patterns.len() == self.patterns.len()
            && patterns
                .iter()
                .zip(&self.patterns)
                .all(|(n, o)| n.premise == o.premise && n.consequence == o.consequence);
        let mut out = self.clone();
        out.regions = regions;
        if same_keys {
            for (i, (n, o)) in patterns.iter().zip(&self.patterns).enumerate() {
                if n.confidence != o.confidence {
                    let patched =
                        out.tpt
                            .update_confidence(&out.pattern_keys[i], i as u32, n.confidence);
                    debug_assert!(patched, "pattern {i} missing from its own tree");
                }
            }
            out.packed.patch_confidences(|id| {
                let n = patterns[id as usize].confidence;
                (n != self.patterns[id as usize].confidence).then_some(n)
            });
            out.patterns = patterns;
            return (out, UpdateTier::Confidences);
        }

        // Structural delta: match old patterns to new by key.
        let old_ids: HashMap<(&[RegionId], RegionId), u32> = self
            .patterns
            .iter()
            .enumerate()
            .map(|(i, p)| ((p.premise.as_slice(), p.consequence), i as u32))
            .collect();
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut added: Vec<u32> = Vec::new();
        for (n, p) in patterns.iter().enumerate() {
            match old_ids.get(&(p.premise.as_slice(), p.consequence)) {
                Some(&o) => {
                    remap.insert(o, n as u32);
                }
                None => added.push(n as u32),
            }
        }
        let removed: Vec<u32> = (0..self.patterns.len() as u32)
            .filter(|o| !remap.contains_key(o))
            .collect();

        for &o in &removed {
            let deleted = out.tpt.delete(&self.pattern_keys[o as usize], o);
            debug_assert!(deleted, "pattern {o} missing from its own tree");
        }
        out.tpt.remap_payloads(|o| remap[&o]);
        let new_keys: Vec<PatternKey> = patterns
            .iter()
            .map(|p| out.key_table.encode_pattern(p, &out.regions))
            .collect();
        for &n in &added {
            out.tpt.insert(
                new_keys[n as usize].clone(),
                patterns[n as usize].confidence,
                n,
            );
        }
        for (&o, &n) in &remap {
            let (old_c, new_c) = (
                self.patterns[o as usize].confidence,
                patterns[n as usize].confidence,
            );
            if old_c != new_c {
                let patched = out.tpt.update_confidence(&new_keys[n as usize], n, new_c);
                debug_assert!(patched, "pattern {n} missing from its own tree");
            }
        }
        // One repack covers the whole batch of deltas.
        out.packed = out.tpt.compact();
        let max_m = max_premise_ones(&new_keys);
        if max_m > out.weight_table.max_ones() {
            out.weight_table = crate::WeightTable::build(out.config.weight_fn, max_m);
        }
        out.pattern_keys = new_keys;
        out.patterns = patterns;
        let tier = UpdateTier::Deltas {
            added: added.len(),
            removed: removed.len(),
        };
        (out, tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{commuter_config, commuter_history, COMMUTER_PERIOD};
    use crate::PredictiveQuery;
    use hpm_geo::Point;
    use hpm_trajectory::Timestamp;

    fn discovery() -> DiscoveryParams {
        DiscoveryParams {
            period: COMMUTER_PERIOD,
            eps: 2.0,
            min_pts: 3,
        }
    }

    fn mining() -> MiningParams {
        MiningParams {
            min_support: 3,
            min_confidence: 0.2,
            max_premise_len: 2,
            max_premise_gap: 2,
            max_span: 3,
        }
    }

    /// Asserts the full-equivalence contract between an incrementally
    /// maintained predictor and a batch build over the same history.
    fn assert_equivalent(incremental: &HybridPredictor, traj: &Trajectory) {
        let batch = HybridPredictor::build(traj, &discovery(), &mining(), *incremental.config());
        assert_eq!(incremental.regions().all(), batch.regions().all());
        assert_eq!(incremental.patterns(), batch.patterns());
        let day =
            (traj.len() as Timestamp / COMMUTER_PERIOD as Timestamp) * COMMUTER_PERIOD as Timestamp;
        for (recent, len) in [
            (vec![Point::new(0.0, 0.0)], 1),
            (vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0)], 1),
            (vec![Point::new(0.1, 0.0)], 3),
            (vec![Point::new(700.0, 700.0)], 2),
        ] {
            let q = PredictiveQuery {
                recent: &recent,
                current_time: day + recent.len() as Timestamp - 1,
                query_time: day + recent.len() as Timestamp - 1 + len,
            };
            assert_eq!(incremental.predict(&q), batch.predict(&q), "query {q:?}");
        }
    }

    /// Runs one incremental retrain pass, falling back to seed+rebuild
    /// on drift (the store's retrain logic, inlined).
    fn retrain(
        trainer: &mut TrainerState,
        predictor: &HybridPredictor,
        traj: &Trajectory,
    ) -> HybridPredictor {
        let delta = trainer.stage_decompose(traj);
        match trainer.stage_cluster(&delta) {
            Ok(visits) => {
                let patterns = trainer.stage_mine(&visits);
                predictor.apply_update(trainer.regions(), patterns).0
            }
            Err(_) => {
                trainer.seed(traj);
                HybridPredictor::build(traj, &discovery(), &mining(), *predictor.config())
            }
        }
    }

    #[test]
    fn incremental_pass_tracks_batch_build() {
        let full = commuter_history(60);
        let mut cfg = commuter_config();
        cfg.k = 2;
        // Start from 40 days, feed the rest day by day.
        let warm = Trajectory::from_points(full.points()[..40 * COMMUTER_PERIOD as usize].to_vec());
        let mut trainer = TrainerState::new(discovery(), mining());
        trainer.seed(&warm);
        let mut predictor = HybridPredictor::build(&warm, &discovery(), &mining(), cfg);
        for day in 41..=60 {
            let traj =
                Trajectory::from_points(full.points()[..day * COMMUTER_PERIOD as usize].to_vec());
            predictor = retrain(&mut trainer, &predictor, &traj);
            assert_equivalent(&predictor, &traj);
        }
        assert!(!predictor.patterns().is_empty());
    }

    /// Regression: seeding on a history shorter than one period (or
    /// starting unaligned) must still produce one clustering state per
    /// offset. The sparse seeding it replaced left `offsets` /
    /// `region_index` shorter than `period`, so the next delta pass
    /// panicked in `stage_cluster` (or silently clustered against the
    /// wrong offset's state).
    #[test]
    fn seed_on_sub_period_history_stays_aligned() {
        let full = commuter_history(41);
        let mut cfg = commuter_config();
        cfg.k = 2;
        // Seed mid-period: offsets >= 3 have no samples yet.
        let warm = Trajectory::from_points(full.points()[..3].to_vec());
        let mut trainer = TrainerState::new(discovery(), mining());
        trainer.seed(&warm);
        assert_eq!(trainer.regions().period(), COMMUTER_PERIOD);
        let mut predictor = HybridPredictor::build(&warm, &discovery(), &mining(), cfg);
        // Grow past the period boundary and beyond — previously an
        // index-out-of-bounds panic in stage_cluster.
        for len in [
            COMMUTER_PERIOD as usize + 2,
            10 * COMMUTER_PERIOD as usize,
            40 * COMMUTER_PERIOD as usize,
        ] {
            let traj = Trajectory::from_points(full.points()[..len].to_vec());
            predictor = retrain(&mut trainer, &predictor, &traj);
            assert_equivalent(&predictor, &traj);
        }
        assert!(!predictor.patterns().is_empty());
    }

    /// Same hazard, unaligned flavour: a trajectory whose start
    /// timestamp is not a multiple of the period leaves early offsets
    /// uncovered; the seeded state must still index by absolute offset.
    #[test]
    fn seed_on_unaligned_history_stays_aligned() {
        let full = commuter_history(41);
        let start: Timestamp = 2; // offsets 0..2 of the first sub empty
        let warm = Trajectory::new(start, full.points()[2..COMMUTER_PERIOD as usize].to_vec());
        let mut trainer = TrainerState::new(discovery(), mining());
        trainer.seed(&warm);
        let mut predictor =
            HybridPredictor::build(&warm, &discovery(), &mining(), commuter_config());
        for days in [2usize, 10, 40] {
            let traj = Trajectory::new(
                start,
                full.points()[2..days * COMMUTER_PERIOD as usize].to_vec(),
            );
            predictor = retrain(&mut trainer, &predictor, &traj);
            let batch = HybridPredictor::build(&traj, &discovery(), &mining(), *predictor.config());
            assert_eq!(predictor.regions().all(), batch.regions().all());
            assert_eq!(predictor.patterns(), batch.patterns());
        }
    }

    #[test]
    fn wild_day_drifts_and_reseeds() {
        let mut pts = commuter_history(40).points().to_vec();
        let mut trainer = TrainerState::new(discovery(), mining());
        let warm = Trajectory::from_points(pts.clone());
        trainer.seed(&warm);
        let predictor = HybridPredictor::build(&warm, &discovery(), &mining(), commuter_config());
        // A brand-new dense hotspot must eventually register as drift
        // (promotion/new-cluster), never silently change structure.
        for _ in 0..4 {
            for t in 0..COMMUTER_PERIOD {
                pts.push(Point::new(400.0 + t as f64 * 0.1, 400.0));
            }
        }
        let traj = Trajectory::from_points(pts);
        let mut drifted = trainer.clone();
        let delta = drifted.stage_decompose(&traj);
        assert!(drifted.stage_cluster(&delta).is_err(), "expected drift");
        assert!(drifted.drift_events() > trainer.drift_events());
        // Recovery: seed + batch build is again equivalent going
        // forward.
        drifted.seed(&traj);
        assert_eq!(drifted.consumed(), traj.len());
        let rebuilt = HybridPredictor::build(&traj, &discovery(), &mining(), *predictor.config());
        let (next, tier) = rebuilt.apply_update(drifted.regions(), drifted.stage_mine(&[]));
        assert_eq!(tier, UpdateTier::Confidences);
        assert_eq!(next.patterns(), rebuilt.patterns());
    }

    #[test]
    fn apply_update_same_inputs_is_identity_tier() {
        let traj = commuter_history(30);
        let p = HybridPredictor::build(&traj, &discovery(), &mining(), commuter_config());
        let (q, tier) = p.apply_update(p.regions().clone(), p.patterns().to_vec());
        assert_eq!(tier, UpdateTier::Confidences);
        assert_eq!(q.patterns(), p.patterns());
    }

    #[test]
    fn apply_update_vocabulary_growth_rebuilds() {
        let traj = commuter_history(30);
        let p = HybridPredictor::build(&traj, &discovery(), &mining(), commuter_config());
        let mut trainer = TrainerState::new(
            DiscoveryParams {
                eps: 2.5,
                ..discovery()
            },
            mining(),
        );
        trainer.seed(&traj);
        // Different eps can change the region vocabulary; force the
        // mismatch by dropping a region from the trainer's view.
        let shrunk = RegionSet::new(
            trainer.regions().all()[..p.regions().len() - 1].to_vec(),
            COMMUTER_PERIOD,
        );
        let keep: Vec<_> = p
            .patterns()
            .iter()
            .filter(|pat| {
                pat.consequence.index() < shrunk.len()
                    && pat.premise.iter().all(|r| r.index() < shrunk.len())
            })
            .cloned()
            .collect();
        let (q, tier) = p.apply_update(shrunk.clone(), keep.clone());
        assert_eq!(tier, UpdateTier::Rebuild);
        assert_eq!(q.patterns(), keep.as_slice());
        assert_eq!(q.regions().len(), shrunk.len());
    }
}
