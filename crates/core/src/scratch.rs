//! Reusable scratch buffers for the allocation-free predict hot path.
//!
//! Every transient a predictive query needs — the recent-region list,
//! the TPT search cursor, the query key, the BQP premise key, the score
//! accumulator, the rank dedup set — lives in one [`PredictScratch`]
//! that the caller owns and reuses. After a warmup query has grown each
//! buffer to its high-water mark, [`HybridPredictor::predict_with`]
//! performs **zero heap allocations** on the pattern paths (the
//! motion-function fallback still allocates inside the RMF least-squares
//! fit — a cold path by construction, taken only when no pattern
//! qualifies). A regression test under `tests/alloc.rs` holds this at
//! exactly zero with a counting allocator.
//!
//! [`HybridPredictor::predict_with`]: crate::HybridPredictor::predict_with

use hpm_patterns::RegionId;
use hpm_tpt::{PatternKey, SearchCursor};

/// Scratch for one predicting thread. Create once (cheap: everything
/// starts empty), pass to every
/// [`predict_with`](crate::HybridPredictor::predict_with) call.
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    /// Deduplicated recent-region ids (the query premise of §V.C).
    pub(crate) recent_ids: Vec<RegionId>,
    /// Buffers used from query encoding onward.
    pub(crate) search: SearchScratch,
}

impl PredictScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        PredictScratch::default()
    }
}

/// The encode/search/rank buffers, split from the recent-id list so the
/// borrow checker can hand `recent_ids` and these out independently.
#[derive(Debug, Clone, Default)]
pub(crate) struct SearchScratch {
    /// TPT search cursor: match buffer + per-search stats.
    pub(crate) cursor: SearchCursor,
    /// The FQP query key / BQP widening interval key.
    pub(crate) qkey: PatternKey,
    /// BQP's query premise key `rkq` (Eq. 5 scoring).
    pub(crate) rkq: hpm_tpt::Bitmap,
    /// `(pattern id, score)` accumulator for ranking.
    pub(crate) scored: Vec<(u32, f64)>,
    /// Consequence regions already emitted (top-`k` dedup).
    pub(crate) seen: Vec<RegionId>,
}
