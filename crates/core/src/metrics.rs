//! Metric names this crate emits, and their registration.
//!
//! The dispatch counters make §VI's three-way split observable in
//! production: every [`crate::HybridPredictor::predict`] call lands in
//! exactly one of `fqp_dispatch` (Algorithm 2, prediction length below
//! the distant threshold `d`), `bqp_dispatch` (Algorithm 3, at or
//! beyond `d`), or — whenever no pattern qualified — `rmf_fallback`
//! (the Recursive Motion Function). Names follow the workspace
//! `crate.module.op` convention; the full catalogue lives in
//! `docs/OBSERVABILITY.md`.

/// Latency span around the whole `predict` call.
pub const PREDICT_SPAN: &str = "core.predict";
/// Latency span around FQP retrieval + scoring (Algorithm 2).
pub const FQP_SPAN: &str = "core.fqp";
/// Latency span around BQP retrieval + scoring (Algorithm 3).
pub const BQP_SPAN: &str = "core.bqp";
/// Latency span around similarity ranking (Eq. 2 / Eq. 5 sort +
/// distinct-consequence top-k), shared by FQP and BQP.
pub const RANK_SPAN: &str = "core.rank";
/// Latency span around applying a retrain result to the live index
/// ([`crate::HybridPredictor::apply_update`]: confidence patches, TPT
/// deltas + repack, or re-assembly).
pub const APPLY_UPDATE_SPAN: &str = "core.apply_update";

/// Predictive queries answered.
pub const PREDICT_CALLS: &str = "core.predict.calls";
/// Queries routed to Forward Query Processing.
pub const FQP_DISPATCH: &str = "core.predict.fqp_dispatch";
/// Queries routed to Backward Query Processing.
pub const BQP_DISPATCH: &str = "core.predict.bqp_dispatch";
/// Queries answered by the motion-function fallback (no pattern
/// qualified on the dispatched path).
pub const RMF_FALLBACK: &str = "core.predict.rmf_fallback";
/// BQP interval widenings beyond the first round (Algorithm 3
/// line 8's `i` minus one, summed over queries).
pub const BQP_WIDENINGS: &str = "core.bqp.widenings";

/// FQP candidate-set size per query (histogram, unit `count`).
pub const FQP_CANDIDATES: &str = "core.fqp.candidates";
/// BQP candidate-set size per query (histogram, unit `count`).
pub const BQP_CANDIDATES: &str = "core.bqp.candidates";

/// Registers every metric above so snapshots cover them even before
/// the first query (zero-valued metrics are still listed).
pub fn register() {
    hpm_obs::registry().counter(PREDICT_CALLS);
    hpm_obs::registry().counter(FQP_DISPATCH);
    hpm_obs::registry().counter(BQP_DISPATCH);
    hpm_obs::registry().counter(RMF_FALLBACK);
    hpm_obs::registry().counter(BQP_WIDENINGS);
    hpm_obs::registry().histogram(FQP_CANDIDATES, hpm_obs::Unit::Count);
    hpm_obs::registry().histogram(BQP_CANDIDATES, hpm_obs::Unit::Count);
    for span in [
        PREDICT_SPAN,
        FQP_SPAN,
        BQP_SPAN,
        RANK_SPAN,
        APPLY_UPDATE_SPAN,
    ] {
        hpm_obs::registry().histogram(span, hpm_obs::Unit::Nanos);
    }
    hpm_tpt::metrics::register();
}
