//! The Hybrid Prediction Model (§VI of the paper): pattern-based
//! prediction with a motion-function fallback.
//!
//! [`HybridPredictor::build`] runs the full offline pipeline over a
//! movement history — periodic decomposition, DBSCAN frequent regions,
//! Apriori pattern mining, TPT indexing — and then answers
//! [`PredictiveQuery`]s:
//!
//! * prediction lengths below the distant-time threshold `d` go to
//!   **Forward Query Processing** (Algorithm 2), which matches the
//!   object's recent movements against pattern premises and ranks
//!   candidates by premise similarity × confidence (Eq. 2);
//! * distant-time queries go to **Backward Query Processing**
//!   (Algorithm 3), which instead looks for consequences temporally
//!   near the query time, ranking by Eq. 5;
//! * whenever no pattern qualifies, the Recursive Motion Function
//!   answers from the recent movements alone.
//!
//! The [`eval`] module implements §VII's measurement protocol.

//! # Example
//!
//! ```
//! use hpm_core::{HpmConfig, HybridPredictor, PredictiveQuery};
//! use hpm_geo::Point;
//! use hpm_patterns::{DiscoveryParams, MiningParams};
//! use hpm_trajectory::Trajectory;
//!
//! // 40 "days" of period 3: home -> road -> work, with jitter.
//! let mut pts = Vec::new();
//! for day in 0..40 {
//!     let j = (day % 3) as f64 * 0.1;
//!     pts.push(Point::new(j, 0.0));
//!     pts.push(Point::new(50.0 + j, 0.0));
//!     pts.push(Point::new(100.0 + j, 0.0));
//! }
//! let predictor = HybridPredictor::build(
//!     &Trajectory::from_points(pts),
//!     &DiscoveryParams { period: 3, eps: 2.0, min_pts: 3 },
//!     &MiningParams {
//!         min_support: 4,
//!         min_confidence: 0.3,
//!         max_premise_len: 2,
//!         max_premise_gap: 2,
//!         max_span: 2,
//!     },
//!     HpmConfig { match_margin: 2.0, ..HpmConfig::default() },
//! );
//!
//! // Day 40 has just begun: the object is at home. Where at offset 2?
//! let recent = [Point::new(0.0, 0.0)];
//! let prediction = predictor.predict(&PredictiveQuery {
//!     recent: &recent,
//!     current_time: 120,
//!     query_time: 122,
//! });
//! assert!(prediction.from_patterns());
//! assert!(prediction.best().distance(&Point::new(100.1, 0.0)) < 2.0);
//! ```

#![warn(missing_docs)]

mod bqp;
mod config;
mod fqp;
mod predictor;
mod scratch;
mod similarity;
mod types;

pub mod eval;
pub mod metrics;
pub mod train;

#[cfg(test)]
pub(crate) mod test_fixtures;

pub use config::HpmConfig;
pub use predictor::HybridPredictor;
pub use scratch::PredictScratch;
pub use similarity::{
    consequence_similarity, premise_similarity, premise_similarity_with, WeightFunction,
    WeightTable,
};
pub use train::{NewVisit, TrainerState, UpdateTier};
pub use types::{
    Prediction, PredictionSource, PredictiveQuery, RankedAnswer, Uncertainty, ELLIPSE_SIGMAS,
};
