//! Query and answer value types of the Hybrid Prediction Model.

use hpm_geo::Point;
use hpm_trajectory::Timestamp;

/// A spatio-temporal predictive query: "given these recent movements
/// and the current time `tc`, where will the object be at `tq`?"
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictiveQuery<'a> {
    /// The object's recent movements `m_q`, oldest first; the last
    /// sample is the object's position *now*.
    pub recent: &'a [Point],
    /// Timestamp `tc` of the last recent sample.
    pub current_time: Timestamp,
    /// The future timestamp `tq > tc` being asked about.
    pub query_time: Timestamp,
}

impl PredictiveQuery<'_> {
    /// Prediction length `tq − tc`.
    ///
    /// # Panics
    /// Panics when `query_time <= current_time` (Definition 2 requires
    /// a future query time).
    pub fn prediction_length(&self) -> u32 {
        assert!(
            self.query_time > self.current_time,
            "query time must be after the current time"
        );
        (self.query_time - self.current_time) as u32
    }
}

/// How a prediction was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictionSource {
    /// Forward Query Processing found matching patterns (Algorithm 2).
    ForwardPatterns,
    /// Backward Query Processing found patterns near the query time
    /// (Algorithm 3).
    BackwardPatterns,
    /// No pattern qualified; the motion function answered.
    MotionFunction,
}

/// One ranked answer: a predicted location with its pattern weight
/// `S_p` (Eq. 2 / Eq. 5), highest first in [`Prediction::answers`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedAnswer {
    /// The predicted location (a consequence-region centre, or the
    /// motion function's extrapolation).
    pub location: Point,
    /// Ranking score; 0 for motion-function answers.
    pub score: f64,
    /// Index of the supporting trajectory pattern, if any.
    pub pattern: Option<u32>,
}

/// The result of a predictive query: the top-`k` answers (at least
/// one), best first.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Ranked answers, best first; never empty.
    pub answers: Vec<RankedAnswer>,
    /// Which processing path produced them.
    pub source: PredictionSource,
}

impl Default for Prediction {
    /// An empty placeholder for out-parameter APIs
    /// ([`HybridPredictor::predict_with`] overwrites both fields): no
    /// answers, motion-function source. Calling [`best`] on it panics.
    ///
    /// [`HybridPredictor::predict_with`]: crate::HybridPredictor::predict_with
    /// [`best`]: Prediction::best
    fn default() -> Self {
        Prediction {
            answers: Vec::new(),
            source: PredictionSource::MotionFunction,
        }
    }
}

impl Prediction {
    /// The highest-ranked predicted location.
    pub fn best(&self) -> Point {
        self.answers[0].location
    }

    /// Whether a trajectory pattern (rather than the motion-function
    /// fallback) produced the answer.
    pub fn from_patterns(&self) -> bool {
        self.source != PredictionSource::MotionFunction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_length_is_difference() {
        let recent = [Point::ORIGIN];
        let q = PredictiveQuery {
            recent: &recent,
            current_time: 100,
            query_time: 140,
        };
        assert_eq!(q.prediction_length(), 40);
    }

    #[test]
    #[should_panic(expected = "after the current time")]
    fn past_query_time_panics() {
        let recent = [Point::ORIGIN];
        PredictiveQuery {
            recent: &recent,
            current_time: 100,
            query_time: 100,
        }
        .prediction_length();
    }

    #[test]
    fn best_and_source() {
        let p = Prediction {
            answers: vec![
                RankedAnswer {
                    location: Point::new(1.0, 2.0),
                    score: 0.9,
                    pattern: Some(3),
                },
                RankedAnswer {
                    location: Point::new(5.0, 5.0),
                    score: 0.4,
                    pattern: Some(7),
                },
            ],
            source: PredictionSource::ForwardPatterns,
        };
        assert_eq!(p.best(), Point::new(1.0, 2.0));
        assert!(p.from_patterns());
        let m = Prediction {
            answers: vec![RankedAnswer {
                location: Point::ORIGIN,
                score: 0.0,
                pattern: None,
            }],
            source: PredictionSource::MotionFunction,
        };
        assert!(!m.from_patterns());
    }
}
