//! Query and answer value types of the Hybrid Prediction Model.

use hpm_geo::{BoundingBox, Point};
use hpm_trajectory::Timestamp;

/// How many residual standard deviations the fallback error ellipse
/// spans per axis. Two sigmas keep ~95% of a Gaussian residual per
/// axis, so a well-calibrated ellipse claims `erf(√2)² ≈ 0.911` mass.
pub const ELLIPSE_SIGMAS: f64 = 2.0;

/// Abramowitz & Stegun 7.1.26 rational approximation of the error
/// function (|error| ≤ 1.5e-7); `std` has no `erf`.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = ((((1.061_405_429 * t - 1.453_152_027) * t + 1.421_413_741) * t - 0.284_496_736)
        * t
        + 0.254_829_592)
        * t;
    sign * (1.0 - poly * (-x * x).exp())
}

/// The spatial claim attached to one ranked answer: "with probability
/// `mass`, the object is inside `region` at the query time".
///
/// Pattern answers use the supporting consequence region's extent with
/// the answer's share of the normalised ranking scores; fallback
/// answers use a residual-calibrated error ellipse (its bounding box)
/// widened per rollout step. Mass is treated as uniform over the
/// region by [`mass_within`](Uncertainty::mass_within).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uncertainty {
    /// Where the claimed probability mass lives.
    pub region: BoundingBox,
    /// How much probability the claim carries, in `[0, 1]`.
    pub mass: f64,
}

impl Uncertainty {
    /// A degenerate certain claim: all mass at exactly `location`.
    pub fn point_claim(location: Point) -> Self {
        Uncertainty {
            region: BoundingBox::from_point(location),
            mass: 1.0,
        }
    }

    /// Half-axes of the error ellipse for a fit with per-axis residual
    /// deviation `sigma`, `steps` rollout steps out: random-walk
    /// widening `ELLIPSE_SIGMAS · σ · √steps`.
    pub fn ellipse_half_axes(sigma: Point, steps: u32) -> (f64, f64) {
        let scale = ELLIPSE_SIGMAS * f64::from(steps).sqrt();
        (sigma.x.abs() * scale, sigma.y.abs() * scale)
    }

    /// Residual-calibrated error ellipse around `center` (stored as
    /// its bounding box). A collapsed axis (zero residuals) claims
    /// full per-axis coverage; a fully collapsed ellipse degenerates
    /// to [`point_claim`](Uncertainty::point_claim).
    pub fn ellipse(center: Point, sigma: Point, steps: u32) -> Self {
        let (hx, hy) = Self::ellipse_half_axes(sigma, steps);
        let axis_mass = |half: f64| {
            if half > 0.0 {
                erf(ELLIPSE_SIGMAS / std::f64::consts::SQRT_2)
            } else {
                1.0
            }
        };
        Uncertainty {
            region: BoundingBox::from_point(center).padded(hx, hy),
            mass: axis_mass(hx) * axis_mass(hy),
        }
    }

    /// Mass claimed inside `query`, under a uniform density over
    /// `region`: the per-axis overlap fractions multiplied by `mass`.
    /// Degenerate axes contribute an inclusion indicator instead.
    pub fn mass_within(&self, query: &BoundingBox) -> f64 {
        let axis = |r_min: f64, r_max: f64, q_min: f64, q_max: f64| {
            let width = r_max - r_min;
            if width > 0.0 {
                (r_max.min(q_max) - r_min.max(q_min)).max(0.0) / width
            } else if r_min >= q_min && r_min <= q_max {
                1.0
            } else {
                0.0
            }
        };
        let fx = axis(
            self.region.min.x,
            self.region.max.x,
            query.min.x,
            query.max.x,
        );
        let fy = axis(
            self.region.min.y,
            self.region.max.y,
            query.min.y,
            query.max.y,
        );
        self.mass * fx * fy
    }
}

/// A spatio-temporal predictive query: "given these recent movements
/// and the current time `tc`, where will the object be at `tq`?"
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictiveQuery<'a> {
    /// The object's recent movements `m_q`, oldest first; the last
    /// sample is the object's position *now*.
    pub recent: &'a [Point],
    /// Timestamp `tc` of the last recent sample.
    pub current_time: Timestamp,
    /// The future timestamp `tq > tc` being asked about.
    pub query_time: Timestamp,
}

impl PredictiveQuery<'_> {
    /// Prediction length `tq − tc`.
    ///
    /// # Panics
    /// Panics when `query_time <= current_time` (Definition 2 requires
    /// a future query time).
    pub fn prediction_length(&self) -> u32 {
        assert!(
            self.query_time > self.current_time,
            "query time must be after the current time"
        );
        (self.query_time - self.current_time) as u32
    }
}

/// How a prediction was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictionSource {
    /// Forward Query Processing found matching patterns (Algorithm 2).
    ForwardPatterns,
    /// Backward Query Processing found patterns near the query time
    /// (Algorithm 3).
    BackwardPatterns,
    /// No pattern qualified; the motion function answered.
    MotionFunction,
}

/// One ranked answer: a predicted location with its pattern weight
/// `S_p` (Eq. 2 / Eq. 5), highest first in [`Prediction::answers`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedAnswer {
    /// The predicted location (a consequence-region centre, or the
    /// motion function's extrapolation).
    pub location: Point,
    /// Ranking score; 0 for motion-function answers.
    pub score: f64,
    /// Index of the supporting trajectory pattern, if any.
    pub pattern: Option<u32>,
    /// The spatial distribution behind the point answer.
    pub uncertainty: Uncertainty,
}

/// The result of a predictive query: the top-`k` answers (at least
/// one), best first.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Ranked answers, best first; never empty.
    pub answers: Vec<RankedAnswer>,
    /// Which processing path produced them.
    pub source: PredictionSource,
}

impl Default for Prediction {
    /// An empty placeholder for out-parameter APIs
    /// ([`HybridPredictor::predict_with`] overwrites both fields): no
    /// answers, motion-function source. Calling [`best`] on it panics.
    ///
    /// [`HybridPredictor::predict_with`]: crate::HybridPredictor::predict_with
    /// [`best`]: Prediction::best
    fn default() -> Self {
        Prediction {
            answers: Vec::new(),
            source: PredictionSource::MotionFunction,
        }
    }
}

impl Prediction {
    /// The highest-ranked predicted location.
    ///
    /// # Panics
    /// Panics on an empty answer set (only the [`Default`] placeholder
    /// is ever empty); use [`try_best`](Prediction::try_best) where a
    /// placeholder can leak.
    pub fn best(&self) -> Point {
        self.answers[0].location
    }

    /// The highest-ranked predicted location, or `None` for the empty
    /// [`Default`] placeholder.
    pub fn try_best(&self) -> Option<Point> {
        self.answers.first().map(|a| a.location)
    }

    /// Whether a trajectory pattern (rather than the motion-function
    /// fallback) produced the answer.
    pub fn from_patterns(&self) -> bool {
        self.source != PredictionSource::MotionFunction
    }

    /// Total probability mass this prediction claims inside `region`:
    /// the sum of each answer's [`Uncertainty::mass_within`]. Ranked
    /// answers are disjoint consequence regions (or a single fallback
    /// ellipse), so the sum never exceeds the claimed total by more
    /// than region-overlap slack.
    pub fn probability_in(&self, region: &BoundingBox) -> f64 {
        self.answers
            .iter()
            .map(|a| a.uncertainty.mass_within(region))
            .sum()
    }

    /// Whether any answer's uncertainty region touches `region`
    /// (inclusive, like [`BoundingBox::intersects`]).
    pub fn possibly_in(&self, region: &BoundingBox) -> bool {
        self.answers
            .iter()
            .any(|a| a.uncertainty.region.intersects(region))
    }

    /// Smallest radius around `focus` that contains at least `tau`
    /// of the claimed probability mass: answers are consumed in order
    /// of the far distance of their uncertainty regions, and the
    /// radius at which the cumulative mass first reaches `tau` is
    /// returned. `INFINITY` when the claimed mass never reaches `tau`
    /// (including NaN `tau`).
    pub fn confidence_distance(&self, focus: &Point, tau: f64) -> f64 {
        let mut cum = 0.0;
        let mut last = f64::NEG_INFINITY;
        loop {
            let mut next = f64::INFINITY;
            for a in &self.answers {
                let d = a.uncertainty.region.far_distance_to(focus);
                if d > last && d < next {
                    next = d;
                }
            }
            if !next.is_finite() {
                return f64::INFINITY;
            }
            for a in &self.answers {
                if a.uncertainty.region.far_distance_to(focus) == next {
                    cum += a.uncertainty.mass;
                }
            }
            if cum >= tau {
                return next;
            }
            last = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_length_is_difference() {
        let recent = [Point::ORIGIN];
        let q = PredictiveQuery {
            recent: &recent,
            current_time: 100,
            query_time: 140,
        };
        assert_eq!(q.prediction_length(), 40);
    }

    #[test]
    #[should_panic(expected = "after the current time")]
    fn past_query_time_panics() {
        let recent = [Point::ORIGIN];
        PredictiveQuery {
            recent: &recent,
            current_time: 100,
            query_time: 100,
        }
        .prediction_length();
    }

    fn boxed(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> BoundingBox {
        BoundingBox {
            min: Point::new(min_x, min_y),
            max: Point::new(max_x, max_y),
        }
    }

    #[test]
    fn best_and_source() {
        let p = Prediction {
            answers: vec![
                RankedAnswer {
                    location: Point::new(1.0, 2.0),
                    score: 0.9,
                    pattern: Some(3),
                    uncertainty: Uncertainty {
                        region: boxed(0.0, 1.0, 2.0, 3.0),
                        mass: 0.7,
                    },
                },
                RankedAnswer {
                    location: Point::new(5.0, 5.0),
                    score: 0.4,
                    pattern: Some(7),
                    uncertainty: Uncertainty {
                        region: boxed(4.0, 4.0, 6.0, 6.0),
                        mass: 0.3,
                    },
                },
            ],
            source: PredictionSource::ForwardPatterns,
        };
        assert_eq!(p.best(), Point::new(1.0, 2.0));
        assert_eq!(p.try_best(), Some(Point::new(1.0, 2.0)));
        assert!(p.from_patterns());
        let m = Prediction {
            answers: vec![RankedAnswer {
                location: Point::ORIGIN,
                score: 0.0,
                pattern: None,
                uncertainty: Uncertainty::point_claim(Point::ORIGIN),
            }],
            source: PredictionSource::MotionFunction,
        };
        assert!(!m.from_patterns());
    }

    #[test]
    fn default_placeholder_has_no_best() {
        assert_eq!(Prediction::default().try_best(), None);
    }

    #[test]
    fn erf_matches_known_values() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(std::f64::consts::SQRT_2) - 0.954_499_74).abs() < 1e-6);
        assert!(erf(5.0) > 0.999_999);
    }

    #[test]
    fn point_claim_is_certain() {
        let u = Uncertainty::point_claim(Point::new(3.0, 4.0));
        assert_eq!(u.mass, 1.0);
        assert_eq!(u.region, BoundingBox::from_point(Point::new(3.0, 4.0)));
        // Degenerate axes use inclusion indicators.
        assert_eq!(u.mass_within(&boxed(0.0, 0.0, 10.0, 10.0)), 1.0);
        assert_eq!(u.mass_within(&boxed(0.0, 0.0, 2.0, 10.0)), 0.0);
    }

    #[test]
    fn ellipse_widens_with_steps_and_calibrates_mass() {
        let sigma = Point::new(2.0, 1.0);
        let one = Uncertainty::ellipse(Point::ORIGIN, sigma, 1);
        let four = Uncertainty::ellipse(Point::ORIGIN, sigma, 4);
        // √steps widening: 4 steps doubles each half-axis.
        assert!((one.region.max.x - ELLIPSE_SIGMAS * 2.0).abs() < 1e-12);
        assert!((four.region.max.x - 2.0 * ELLIPSE_SIGMAS * 2.0).abs() < 1e-12);
        assert!((four.region.max.y - 2.0 * ELLIPSE_SIGMAS * 1.0).abs() < 1e-12);
        // Two-sigma per-axis coverage: erf(√2)² ≈ 0.911.
        assert!((one.mass - 0.911_070).abs() < 1e-4);
        assert_eq!(one.mass, four.mass);
        // Zero residuals collapse to a certain point claim.
        let frozen = Uncertainty::ellipse(Point::new(1.0, 1.0), Point::ORIGIN, 7);
        assert_eq!(frozen, Uncertainty::point_claim(Point::new(1.0, 1.0)));
        // One collapsed axis claims full coverage on that axis only.
        let flat = Uncertainty::ellipse(Point::ORIGIN, Point::new(1.0, 0.0), 1);
        assert!((flat.mass - 0.954_500).abs() < 1e-4);
    }

    #[test]
    fn mass_within_is_overlap_fraction() {
        let u = Uncertainty {
            region: boxed(0.0, 0.0, 10.0, 10.0),
            mass: 0.8,
        };
        // Full containment claims everything.
        assert!((u.mass_within(&boxed(-1.0, -1.0, 11.0, 11.0)) - 0.8).abs() < 1e-12);
        // Half the width, full height: half the mass.
        assert!((u.mass_within(&boxed(0.0, 0.0, 5.0, 10.0)) - 0.4).abs() < 1e-12);
        // Disjoint: nothing.
        assert_eq!(u.mass_within(&boxed(20.0, 20.0, 30.0, 30.0)), 0.0);
    }

    #[test]
    fn probability_in_sums_answers() {
        let p = Prediction {
            answers: vec![
                RankedAnswer {
                    location: Point::new(5.0, 5.0),
                    score: 0.6,
                    pattern: Some(0),
                    uncertainty: Uncertainty {
                        region: boxed(0.0, 0.0, 10.0, 10.0),
                        mass: 0.6,
                    },
                },
                RankedAnswer {
                    location: Point::new(50.0, 50.0),
                    score: 0.4,
                    pattern: Some(1),
                    uncertainty: Uncertainty {
                        region: boxed(40.0, 40.0, 60.0, 60.0),
                        mass: 0.4,
                    },
                },
            ],
            source: PredictionSource::ForwardPatterns,
        };
        let everywhere = boxed(-100.0, -100.0, 100.0, 100.0);
        assert!((p.probability_in(&everywhere) - 1.0).abs() < 1e-12);
        assert!((p.probability_in(&boxed(0.0, 0.0, 10.0, 10.0)) - 0.6).abs() < 1e-12);
        assert!(p.possibly_in(&boxed(9.0, 9.0, 12.0, 12.0)));
        assert!(!p.possibly_in(&boxed(20.0, 20.0, 30.0, 30.0)));
        // Touching edges count as possible (closed-set semantics).
        assert!(p.possibly_in(&boxed(10.0, 10.0, 12.0, 12.0)));
    }

    #[test]
    fn confidence_distance_consumes_mass_outward() {
        let p = Prediction {
            answers: vec![
                RankedAnswer {
                    location: Point::new(1.0, 0.0),
                    score: 0.5,
                    pattern: Some(0),
                    uncertainty: Uncertainty {
                        region: boxed(0.0, 0.0, 2.0, 0.0),
                        mass: 0.5,
                    },
                },
                RankedAnswer {
                    location: Point::new(10.0, 0.0),
                    score: 0.3,
                    pattern: Some(1),
                    uncertainty: Uncertainty {
                        region: boxed(9.0, 0.0, 11.0, 0.0),
                        mass: 0.3,
                    },
                },
            ],
            source: PredictionSource::ForwardPatterns,
        };
        let focus = Point::ORIGIN;
        // 0.5 mass is fully inside radius 2; 0.8 needs radius 11.
        assert_eq!(p.confidence_distance(&focus, 0.5), 2.0);
        assert_eq!(p.confidence_distance(&focus, 0.8), 11.0);
        // More mass than claimed is unreachable.
        assert_eq!(p.confidence_distance(&focus, 0.9), f64::INFINITY);
        assert_eq!(p.confidence_distance(&focus, f64::NAN), f64::INFINITY);
        // τ = 0 still pays for the nearest answer region.
        assert_eq!(p.confidence_distance(&focus, 0.0), 2.0);
        // The empty placeholder claims nothing anywhere.
        assert_eq!(
            Prediction::default().confidence_distance(&focus, 0.1),
            f64::INFINITY
        );
    }
}
