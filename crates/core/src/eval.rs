//! Evaluation harness implementing §VII's experiment protocol:
//! train a predictor on the first `train_subs` sub-trajectories,
//! generate queries against held-out sub-trajectories, and measure the
//! average prediction error — "the distance between a predicted
//! location and its actual location".
//!
//! Query placement is deterministic (evenly strided over test
//! sub-trajectories and in-period positions), so runs are exactly
//! reproducible without threading an RNG through the core crate.

use crate::{HybridPredictor, PredictiveQuery};
use hpm_geo::Point;
use hpm_motion::{LinearMotion, MotionModel, Rmf};
use hpm_trajectory::{Timestamp, Trajectory};

/// Parameters of one evaluation workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Sub-trajectories reserved for training; queries are placed in
    /// the remainder.
    pub train_subs: usize,
    /// Samples of recent movement handed to each query.
    pub recent_len: usize,
    /// Prediction length `tq − tc`.
    pub prediction_length: u32,
    /// Number of queries (paper: 50 for accuracy, 30 for cost).
    pub num_queries: usize,
}

/// One evaluation query with its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalQuery {
    /// Recent movements, oldest first.
    pub recent: Vec<Point>,
    /// Timestamp of the last recent sample.
    pub current_time: Timestamp,
    /// The asked-about future timestamp.
    pub query_time: Timestamp,
    /// Where the object actually was at `query_time`.
    pub truth: Point,
}

impl EvalQuery {
    /// Prediction length `tq − tc`.
    pub fn prediction_length(&self) -> u32 {
        self.as_query().prediction_length()
    }

    /// Borrowed [`PredictiveQuery`] view.
    pub fn as_query(&self) -> PredictiveQuery<'_> {
        PredictiveQuery {
            recent: &self.recent,
            current_time: self.current_time,
            query_time: self.query_time,
        }
    }
}

/// The training prefix: the first `train_subs` periods of `traj`.
///
/// # Panics
/// Panics when the trajectory is shorter than the requested prefix.
pub fn training_slice(traj: &Trajectory, period: u32, train_subs: usize) -> Trajectory {
    let n = train_subs * period as usize;
    assert!(
        traj.len() >= n,
        "trajectory has {} samples, need {n} for {train_subs} training subs",
        traj.len()
    );
    Trajectory::new(traj.start(), traj.points()[..n].to_vec())
}

/// Builds a deterministic query workload over the held-out
/// sub-trajectories of `traj`.
///
/// Queries are strided round-robin over test sub-trajectories; within
/// each, the current time walks a co-prime stride through the valid
/// positions so queries cover the period evenly. Both `tc` and `tq`
/// stay within one sub-trajectory (Definition 2 assumes `tq < T`).
///
/// # Panics
/// Panics when no test sub-trajectories remain, or the period cannot
/// fit `recent_len + prediction_length`.
pub fn make_workload(traj: &Trajectory, period: u32, params: &WorkloadParams) -> Vec<EvalQuery> {
    let t = period as usize;
    let total_subs = traj.len() / t;
    assert!(
        total_subs > params.train_subs,
        "no held-out sub-trajectories: {} total, {} training",
        total_subs,
        params.train_subs
    );
    let valid = t
        .checked_sub(params.prediction_length as usize + params.recent_len)
        .filter(|&v| v > 0)
        .unwrap_or_else(|| {
            panic!(
                "period {t} cannot fit recent_len {} + prediction_length {}",
                params.recent_len, params.prediction_length
            )
        });
    let test_subs = total_subs - params.train_subs;
    // A stride co-prime with `valid` walks all positions before
    // repeating.
    let stride = (valid / 2).max(1) | 1;
    let stride = if gcd(stride, valid) == 1 { stride } else { 1 };

    let mut queries = Vec::with_capacity(params.num_queries);
    for q in 0..params.num_queries {
        let sub = params.train_subs + q % test_subs;
        let pos = (q * stride) % valid; // in-period index of the first recent sample
        let start = sub * t + pos;
        let recent: Vec<Point> = traj.points()[start..start + params.recent_len].to_vec();
        let current_time = (start + params.recent_len - 1) as Timestamp;
        let query_time = current_time + params.prediction_length as Timestamp;
        let truth = traj.at(query_time).expect("query time inside trajectory");
        queries.push(EvalQuery {
            recent,
            current_time,
            query_time,
            truth,
        });
    }
    queries
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Clamps a predicted location into the data extent `[0, extent]²` —
/// every real deployment knows its map bounds, and without this a
/// diverging motion-function rollout would let a single query dominate
/// the average error.
pub fn clamp_extent(p: Point, extent: f64) -> Point {
    p.clamp(0.0, extent)
}

/// Average prediction error of an arbitrary predictor closure.
pub fn avg_error(
    mut predict: impl FnMut(&PredictiveQuery<'_>) -> Point,
    queries: &[EvalQuery],
    extent: f64,
) -> f64 {
    assert!(!queries.is_empty(), "empty workload");
    let total: f64 = queries
        .iter()
        .map(|q| clamp_extent(predict(&q.as_query()), extent).distance(&q.truth))
        .sum();
    total / queries.len() as f64
}

/// Average error of the Hybrid Prediction Model over a workload.
pub fn avg_error_hpm(predictor: &HybridPredictor, queries: &[EvalQuery], extent: f64) -> f64 {
    avg_error(|q| predictor.predict(q).best(), queries, extent)
}

/// Distribution statistics of per-query errors — means hide tails, and
/// the tail is where the motion-function fallback lives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Number of queries.
    pub count: usize,
    /// Arithmetic mean error.
    pub mean: f64,
    /// Median error.
    pub median: f64,
    /// 95th-percentile error (nearest-rank).
    pub p95: f64,
    /// Worst-case error.
    pub max: f64,
}

/// Computes [`ErrorStats`] for an arbitrary predictor closure.
pub fn error_stats(
    mut predict: impl FnMut(&PredictiveQuery<'_>) -> Point,
    queries: &[EvalQuery],
    extent: f64,
) -> ErrorStats {
    assert!(!queries.is_empty(), "empty workload");
    let mut errors: Vec<f64> = queries
        .iter()
        .map(|q| clamp_extent(predict(&q.as_query()), extent).distance(&q.truth))
        .collect();
    errors.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    let n = errors.len();
    let rank = |p: f64| errors[(((n as f64) * p).ceil() as usize).clamp(1, n) - 1];
    ErrorStats {
        count: n,
        mean: errors.iter().sum::<f64>() / n as f64,
        median: rank(0.5),
        p95: rank(0.95),
        max: errors[n - 1],
    }
}

/// Per-processing-path breakdown of an HPM run: how often each of
/// FQP / BQP / motion-fallback answered, and at what mean error.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SourceBreakdown {
    /// (queries answered, mean error) for Forward Query Processing.
    pub forward: (usize, f64),
    /// (queries answered, mean error) for Backward Query Processing.
    pub backward: (usize, f64),
    /// (queries answered, mean error) for the motion-function fallback.
    pub motion: (usize, f64),
}

/// Computes the per-source breakdown of an HPM run over a workload.
pub fn source_breakdown(
    predictor: &HybridPredictor,
    queries: &[EvalQuery],
    extent: f64,
) -> SourceBreakdown {
    assert!(!queries.is_empty(), "empty workload");
    let mut sums = [(0usize, 0.0f64); 3];
    for q in queries {
        let pred = predictor.predict(&q.as_query());
        let err = clamp_extent(pred.best(), extent).distance(&q.truth);
        let slot = match pred.source {
            crate::PredictionSource::ForwardPatterns => 0,
            crate::PredictionSource::BackwardPatterns => 1,
            crate::PredictionSource::MotionFunction => 2,
        };
        sums[slot].0 += 1;
        sums[slot].1 += err;
    }
    let mean = |(n, total): (usize, f64)| {
        if n == 0 {
            (0, 0.0)
        } else {
            (n, total / n as f64)
        }
    };
    SourceBreakdown {
        forward: mean(sums[0]),
        backward: mean(sums[1]),
        motion: mean(sums[2]),
    }
}

/// Fraction of queries the HPM answered from patterns (vs the motion
/// fallback) — the driver of Fig. 10's query-cost gap.
pub fn pattern_hit_rate(predictor: &HybridPredictor, queries: &[EvalQuery]) -> f64 {
    assert!(!queries.is_empty(), "empty workload");
    let hits = queries
        .iter()
        .filter(|q| predictor.predict(&q.as_query()).from_patterns())
        .count();
    hits as f64 / queries.len() as f64
}

/// Fraction of queries where the truth lies within `radius` of at
/// least one of the predictor's top-k answers — the metric that makes
/// `k > 1` meaningful (the best single answer may be the wrong branch
/// of a fork, while the true branch sits at rank 2).
pub fn hit_rate_at_k(
    predictor: &HybridPredictor,
    queries: &[EvalQuery],
    radius: f64,
    extent: f64,
) -> f64 {
    assert!(!queries.is_empty(), "empty workload");
    assert!(radius >= 0.0 && radius.is_finite(), "radius must be finite");
    let hits = queries
        .iter()
        .filter(|q| {
            predictor
                .predict(&q.as_query())
                .answers
                .iter()
                .any(|a| clamp_extent(a.location, extent).distance(&q.truth) <= radius)
        })
        .count();
    hits as f64 / queries.len() as f64
}

/// Calibration of the claimed uncertainty over a workload: the mean
/// probability mass a prediction assigns to its own uncertainty
/// regions, against the empirical frequency of the truth actually
/// landing inside one. A well-calibrated predictor has
/// `hit_rate ≈ predicted_mass`; `hit_rate ≫ predicted_mass` means the
/// regions are too wide (under-confident), the reverse means the
/// claimed mass overstates what the regions deliver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Number of queries evaluated.
    pub queries: usize,
    /// Mean claimed mass per query (sum over the answer set).
    pub predicted_mass: f64,
    /// Fraction of queries whose truth fell inside at least one
    /// answer's uncertainty region.
    pub hit_rate: f64,
}

impl Calibration {
    /// Signed calibration gap `hit_rate − predicted_mass`.
    pub fn gap(&self) -> f64 {
        self.hit_rate - self.predicted_mass
    }
}

/// Measures [`Calibration`] of the Hybrid Prediction Model.
pub fn calibration(predictor: &HybridPredictor, queries: &[EvalQuery]) -> Calibration {
    assert!(!queries.is_empty(), "empty workload");
    let mut mass = 0.0;
    let mut hits = 0usize;
    for q in queries {
        let pred = predictor.predict(&q.as_query());
        mass += pred.answers.iter().map(|a| a.uncertainty.mass).sum::<f64>();
        if pred
            .answers
            .iter()
            .any(|a| a.uncertainty.region.contains(&q.truth))
        {
            hits += 1;
        }
    }
    let n = queries.len() as f64;
    Calibration {
        queries: queries.len(),
        predicted_mass: mass / n,
        hit_rate: hits as f64 / n,
    }
}

/// Average error of a standalone RMF (the paper's comparison baseline):
/// fitted per query on its recent window.
pub fn avg_error_rmf(queries: &[EvalQuery], retrospect: usize, extent: f64) -> f64 {
    avg_error(
        |q| {
            let steps = q.prediction_length();
            Rmf::fit(q.recent, retrospect)
                .map(|m| m.predict(steps))
                .unwrap_or_else(|| *q.recent.last().expect("non-empty recent"))
        },
        queries,
        extent,
    )
}

/// Average error of the linear motion function baseline.
pub fn avg_error_linear(queries: &[EvalQuery], extent: f64) -> f64 {
    avg_error(
        |q| {
            let steps = q.prediction_length();
            LinearMotion::fit(q.recent)
                .map(|m| m.predict(steps))
                .unwrap_or_else(|| *q.recent.last().expect("non-empty recent"))
        },
        queries,
        extent,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{commuter_config, commuter_trajectory, COMMUTER_PERIOD};
    use hpm_patterns::{DiscoveryParams, MiningParams};

    fn workload(len: u32) -> Vec<EvalQuery> {
        make_workload(
            &commuter_trajectory(),
            COMMUTER_PERIOD,
            &WorkloadParams {
                train_subs: 60,
                recent_len: 2,
                prediction_length: len,
                num_queries: 20,
            },
        )
    }

    fn predictor() -> HybridPredictor {
        let traj = commuter_trajectory();
        let train = training_slice(&traj, COMMUTER_PERIOD, 60);
        HybridPredictor::build(
            &train,
            &DiscoveryParams {
                period: COMMUTER_PERIOD,
                eps: 2.0,
                min_pts: 3,
            },
            &MiningParams {
                min_support: 2,
                min_confidence: 0.3,
                max_premise_len: 2,
                max_premise_gap: 2,
                max_span: 3,
            },
            commuter_config(),
        )
    }

    #[test]
    fn workload_shape_and_truth() {
        let w = workload(1);
        assert_eq!(w.len(), 20);
        let traj = commuter_trajectory();
        for q in &w {
            assert_eq!(q.recent.len(), 2);
            assert!(q.query_time > q.current_time);
            // Queries only touch held-out subs.
            assert!(q.current_time as usize / 4 >= 60);
            // Same sub-trajectory for tc and tq.
            assert_eq!(q.current_time as usize / 4, q.query_time as usize / 4);
            assert_eq!(traj.at(q.query_time), Some(q.truth));
        }
    }

    #[test]
    fn hpm_beats_motion_on_patterned_data() {
        // The commuter's movements repeat exactly (modulo tiny jitter):
        // pattern answers land on region centres while a motion
        // function extrapolating "home -> road" misses work/pub turns.
        let p = predictor();
        let w = workload(1);
        let hpm = avg_error_hpm(&p, &w, 200.0);
        let rmf = avg_error_rmf(&w, 2, 200.0);
        assert!(hpm < rmf, "hpm {hpm} vs rmf {rmf}");
        assert!(hpm < 5.0, "hpm error too large: {hpm}");
    }

    #[test]
    fn hit_rate_high_on_patterned_data() {
        let p = predictor();
        let w = workload(1);
        assert!(pattern_hit_rate(&p, &w) > 0.8);
    }

    #[test]
    fn training_slice_prefix() {
        let traj = commuter_trajectory();
        let t = training_slice(&traj, COMMUTER_PERIOD, 10);
        assert_eq!(t.len(), 40);
        assert_eq!(t.points()[0], traj.points()[0]);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversized_prediction_length_panics() {
        workload(10);
    }

    #[test]
    #[should_panic(expected = "no held-out")]
    fn no_test_subs_panics() {
        make_workload(
            &commuter_trajectory(),
            COMMUTER_PERIOD,
            &WorkloadParams {
                train_subs: 100,
                recent_len: 1,
                prediction_length: 1,
                num_queries: 5,
            },
        );
    }

    #[test]
    fn clamp_bounds_predictions() {
        assert_eq!(
            clamp_extent(Point::new(-5.0, 1e12), 100.0),
            Point::new(0.0, 100.0)
        );
    }

    #[test]
    fn linear_baseline_runs() {
        let w = workload(1);
        let e = avg_error_linear(&w, 200.0);
        assert!(e.is_finite() && e >= 0.0);
    }

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(workload(1), workload(1));
    }

    #[test]
    fn error_stats_orders_percentiles() {
        let p = predictor();
        let w = workload(1);
        let stats = error_stats(|q| p.predict(q).best(), &w, 200.0);
        assert_eq!(stats.count, w.len());
        assert!(stats.median <= stats.mean * 2.0 + 1e-9);
        assert!(stats.median <= stats.p95 + 1e-9);
        assert!(stats.p95 <= stats.max + 1e-9);
        assert!(stats.max.is_finite());
    }

    #[test]
    fn error_stats_constant_predictor() {
        // A predictor that always answers the truth has all-zero stats.
        let w = workload(1);
        let truths: Vec<_> = w.iter().map(|q| q.truth).collect();
        let mut i = 0;
        let stats = error_stats(
            |_| {
                let t = truths[i];
                i += 1;
                t
            },
            &w,
            200.0,
        );
        assert_eq!(stats.mean, 0.0);
        assert_eq!(stats.p95, 0.0);
        assert_eq!(stats.max, 0.0);
    }

    #[test]
    fn hit_rate_at_k_monotone_in_k_and_radius() {
        let traj = commuter_trajectory();
        let train = training_slice(&traj, COMMUTER_PERIOD, 60);
        let build = |k: usize| {
            let mut cfg = commuter_config();
            cfg.k = k;
            HybridPredictor::build(
                &train,
                &DiscoveryParams {
                    period: COMMUTER_PERIOD,
                    eps: 2.0,
                    min_pts: 3,
                },
                &MiningParams {
                    min_support: 2,
                    min_confidence: 0.3,
                    max_premise_len: 2,
                    max_premise_gap: 2,
                    max_span: 3,
                },
                cfg,
            )
        };
        // Queries targeting offset 3 (the pub/gym fork): top-1 can
        // pick the wrong branch, top-2 covers both. Built by hand —
        // the fork sits at the last offset of the tiny period, outside
        // make_workload's same-sub window.
        let w: Vec<EvalQuery> = (60..90)
            .map(|sub| {
                let start = sub * COMMUTER_PERIOD as usize;
                EvalQuery {
                    recent: vec![traj.points()[start]],
                    current_time: start as Timestamp,
                    query_time: (start + 3) as Timestamp,
                    truth: traj.points()[start + 3],
                }
            })
            .collect();
        // Eq. 5 ranks the certain "work" consequence (adjacent offset,
        // confidence 1) first, then the two fork branches: k = 1 never
        // hits the fork, k = 2 covers one branch, k = 3 covers both.
        let k1 = hit_rate_at_k(&build(1), &w, 5.0, 200.0);
        let k2 = hit_rate_at_k(&build(2), &w, 5.0, 200.0);
        let k3 = hit_rate_at_k(&build(3), &w, 5.0, 200.0);
        assert!(k1 <= k2 && k2 <= k3, "not monotone: {k1} {k2} {k3}");
        assert!((k2 - 0.5).abs() < 0.2, "k2 {k2}");
        assert!(k3 > 0.9, "k3 {k3}");
        // Wider radius can only help.
        let wide = hit_rate_at_k(&build(1), &w, 500.0, 200.0);
        assert!(wide >= k1);
    }

    #[test]
    fn calibration_bounds_and_unit_pattern_mass() {
        let p = predictor();
        let w = workload(1);
        let c = calibration(&p, &w);
        assert_eq!(c.queries, w.len());
        // Pattern answer masses are normalised to sum to 1 per query,
        // and the commuter workload is fully patterned.
        assert!((c.predicted_mass - 1.0).abs() < 1e-9, "{c:?}");
        assert!((0.0..=1.0).contains(&c.hit_rate));
        assert_eq!(c.gap(), c.hit_rate - c.predicted_mass);
        // The commuter repeats its route within eps: the truth lands
        // inside a discovered region's bbox almost always.
        assert!(c.hit_rate > 0.8, "{c:?}");
    }

    #[test]
    fn calibration_fallback_claims_ellipse_mass() {
        // A patternless workload (random recent points far from any
        // region) forces the motion fallback; each answer claims the
        // two-axis ellipse mass.
        let p = predictor();
        let w: Vec<EvalQuery> = (0..10)
            .map(|i| EvalQuery {
                recent: vec![
                    Point::new(1000.0 + i as f64, 1000.0),
                    Point::new(1003.0 + i as f64, 1002.0),
                ],
                current_time: 241,
                query_time: 242,
                truth: Point::new(1006.0 + i as f64, 1004.0),
            })
            .collect();
        let c = calibration(&p, &w);
        assert!(c.predicted_mass > 0.0 && c.predicted_mass <= 1.0, "{c:?}");
    }

    #[test]
    fn source_breakdown_partitions_queries() {
        let p = predictor();
        let w = workload(1);
        let b = source_breakdown(&p, &w, 200.0);
        assert_eq!(b.forward.0 + b.backward.0 + b.motion.0, w.len());
        // The commuter's offsets are fully patterned: forward answers
        // dominate at length 1.
        assert!(b.forward.0 > 0);
        for (n, mean) in [b.forward, b.backward, b.motion] {
            if n == 0 {
                assert_eq!(mean, 0.0);
            } else {
                assert!(mean.is_finite() && mean >= 0.0);
            }
        }
    }
}
