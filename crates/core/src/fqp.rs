//! Forward Query Processing (Algorithm 2): non-distant-time queries,
//! ranked by premise similarity × confidence (Eq. 2).

use crate::predictor::{rank_answers_into, HybridPredictor};
use crate::scratch::SearchScratch;
use crate::{premise_similarity_with, Prediction, PredictiveQuery};
use hpm_patterns::RegionId;
use hpm_trajectory::TimeOffset;

/// Retrieves and ranks FQP candidates into `out.answers`; `false`
/// means no pattern qualified and the caller should invoke the motion
/// function. Allocation-free once `scratch` is warm.
///
/// Candidates must intersect the query key on both parts: share at
/// least one premise region with the object's recent movements *and*
/// have their consequence at exactly the query's time offset.
pub(crate) fn run(
    predictor: &HybridPredictor,
    recent_ids: &[RegionId],
    query: &PredictiveQuery<'_>,
    scratch: &mut SearchScratch,
    out: &mut Prediction,
) -> bool {
    let _span = hpm_obs::span!(crate::metrics::FQP_SPAN);
    if recent_ids.is_empty() {
        return false; // no premise: the query key cannot intersect
    }
    let SearchScratch {
        cursor,
        qkey,
        scored,
        seen,
        ..
    } = scratch;
    let tq_offset = (query.query_time % predictor.period as u64) as TimeOffset;
    predictor
        .key_table
        .fqp_query_into(recent_ids.iter().copied(), tq_offset, qkey);
    if qkey.consequence.is_zero() {
        return false; // no pattern predicts this time offset
    }
    let matches = cursor.search_packed(&predictor.packed, qkey);
    hpm_obs::histogram!(crate::metrics::FQP_CANDIDATES).record(matches.len() as u64);
    if matches.is_empty() {
        return false;
    }
    // Eq. 2: S_p = S_r × c.
    scored.clear();
    scored.extend(matches.iter().map(|m| {
        let rk = &predictor.pattern_keys[m.pattern as usize].premise;
        let weights = predictor.weight_table.weights(rk.count_ones());
        let sr = premise_similarity_with(rk, &qkey.premise, weights);
        (m.pattern, sr * m.confidence)
    }));
    rank_answers_into(
        predictor,
        scored,
        predictor.config.k,
        seen,
        &mut out.answers,
    );
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{fig3_predictor, fig3_query_recent};
    use crate::PredictionSource;

    #[test]
    fn section_vi_b_worked_example() {
        // Jane's recent movements are R0^0 and R1^0, tq = 2. The paper
        // computes S_p(1000011, 1000011) = 1 × 0.5 = 0.5 and
        // S_p(1000101, 1000011) = 0.33 × 0.4 = 0.132, so R2^0's centre
        // wins.
        let p = fig3_predictor(1);
        let (recent, tc) = fig3_query_recent();
        let q = PredictiveQuery {
            recent: &recent,
            current_time: tc,
            query_time: 2,
        };
        let pred = p.predict(&q);
        assert_eq!(pred.source, PredictionSource::ForwardPatterns);
        assert_eq!(pred.answers.len(), 1);
        let top = pred.answers[0];
        assert_eq!(top.pattern, Some(2)); // P2: R0^0 ∧ R1^0 -> R2^0
        assert!((top.score - 0.5).abs() < 1e-9);
    }

    #[test]
    fn k2_returns_both_candidates_in_order() {
        let p = fig3_predictor(2);
        let (recent, tc) = fig3_query_recent();
        let q = PredictiveQuery {
            recent: &recent,
            current_time: tc,
            query_time: 2,
        };
        let pred = p.predict(&q);
        assert_eq!(pred.answers.len(), 2);
        assert_eq!(pred.answers[0].pattern, Some(2));
        assert_eq!(pred.answers[1].pattern, Some(3));
        assert!((pred.answers[1].score - 1.0 / 3.0 * 0.4).abs() < 1e-9);
    }

    #[test]
    fn no_consequence_at_query_offset_falls_back() {
        let p = fig3_predictor(1);
        let (recent, tc) = fig3_query_recent();
        // No pattern has consequence offset 0 (only 1 and 2 exist);
        // period is 3 so query_time 3 has offset 0.
        let q = PredictiveQuery {
            recent: &recent,
            current_time: tc,
            query_time: 3,
        };
        let pred = p.predict(&q);
        assert_eq!(pred.source, PredictionSource::MotionFunction);
    }
}
