//! Premise and consequence similarity measures (§VI.A, Eq. 1 and 3).

use hpm_geo::mem::vec_cap_bytes;
use hpm_geo::MemUse;
use hpm_tpt::Bitmap;

/// The weight functions of §VI.A assigning importance `ωᵢ` to the `1`
/// at numbered position `i` of a premise key (positions count from the
/// right starting at 1, so by Property 1 a higher `i` is closer in time
/// to the consequence and weighs more).
///
/// All four normalise to `Σωᵢ = 1` over the key's `m = Size(rk)` ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WeightFunction {
    /// `ωᵢ = i / Σj` — one of the two best performers in §VI.A, the
    /// default.
    #[default]
    Linear,
    /// `ωᵢ = i² / Σj²` — the other §VI.A best performer.
    Quadratic,
    /// `ωᵢ = 2ⁱ / Σ2ʲ`.
    Exponential,
    /// `ωᵢ = i! / Σj!`.
    Factorial,
}

impl WeightFunction {
    /// All four, for ablation sweeps.
    pub const ALL: [WeightFunction; 4] = [
        WeightFunction::Linear,
        WeightFunction::Quadratic,
        WeightFunction::Exponential,
        WeightFunction::Factorial,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            WeightFunction::Linear => "linear",
            WeightFunction::Quadratic => "quadratic",
            WeightFunction::Exponential => "exponential",
            WeightFunction::Factorial => "factorial",
        }
    }

    /// Normalised weights `ω₁..ω_m` for a premise key with `m` ones.
    ///
    /// The exponential and factorial families are computed relative to
    /// their largest term so arbitrarily large `m` stays finite.
    pub fn weights(&self, m: usize) -> Vec<f64> {
        if m == 0 {
            return Vec::new();
        }
        let mut raw: Vec<f64> = match self {
            WeightFunction::Linear => (1..=m).map(|i| i as f64).collect(),
            WeightFunction::Quadratic => (1..=m).map(|i| (i * i) as f64).collect(),
            WeightFunction::Exponential => {
                // 2^i / 2^m = 2^(i - m): largest term 1, no overflow.
                (1..=m).map(|i| 2f64.powi(i as i32 - m as i32)).collect()
            }
            WeightFunction::Factorial => {
                // i! / m! via the backward recurrence 1/(m(m-1)…(i+1)).
                let mut v = vec![0.0; m];
                let mut term = 1.0;
                for i in (0..m).rev() {
                    v[i] = term;
                    term /= (i + 1) as f64; // (i)!/m! = (i+1)!/m! / (i+1)
                }
                v
            }
        };
        let total: f64 = raw.iter().sum();
        for w in &mut raw {
            *w /= total;
        }
        raw
    }
}

/// Precomputed [`WeightFunction::weights`] rows for every premise size
/// `m` up to a maximum — the allocation-free path to Eq. 1 on the
/// predict hot loop: `weights(m)` is a slice read, not a fresh `Vec`.
///
/// A predictor builds one table sized to the largest premise among its
/// pattern keys (rebuilt when the weight function changes), and the
/// FQP/BQP scorers pass `table.weights(rk.count_ones())` to
/// [`premise_similarity_with`].
#[derive(Debug, Clone, Default)]
pub struct WeightTable {
    /// `rows[m]` = the normalised weights for a key with `m` ones.
    rows: Vec<Vec<f64>>,
}

impl MemUse for WeightTable {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.rows.capacity() * std::mem::size_of::<Vec<f64>>()
            + self.rows.iter().map(vec_cap_bytes).sum::<usize>()
    }
}

impl WeightTable {
    /// Builds rows for `m = 0..=max_ones` under `wf`.
    pub fn build(wf: WeightFunction, max_ones: usize) -> Self {
        WeightTable {
            rows: (0..=max_ones).map(|m| wf.weights(m)).collect(),
        }
    }

    /// The weight row for a premise key with `m` ones — identical to
    /// `wf.weights(m)` without the allocation.
    ///
    /// # Panics
    /// Panics when `m > max_ones`.
    #[inline]
    pub fn weights(&self, m: usize) -> &[f64] {
        &self.rows[m]
    }

    /// Largest `m` this table covers.
    pub fn max_ones(&self) -> usize {
        self.rows.len().saturating_sub(1)
    }
}

/// Premise similarity `S_r` (Eq. 1): the summed weights of the ones of
/// `rk` (a pattern's premise key) that are also set in `rkq` (the query
/// premise key). Weights are positional over `rk`'s own ones, so
/// `S_r(rk, rk) = 1` and `0 ≤ S_r ≤ 1`.
///
/// # Panics
/// Panics on key-length mismatch.
pub fn premise_similarity(rk: &Bitmap, rkq: &Bitmap, wf: WeightFunction) -> f64 {
    let weights = wf.weights(rk.count_ones());
    premise_similarity_with(rk, rkq, &weights)
}

/// [`premise_similarity`] against a precomputed weight row (from a
/// [`WeightTable`]): the caller supplies `wf.weights(rk.count_ones())`
/// and no allocation happens.
///
/// # Panics
/// Panics on key-length mismatch.
pub fn premise_similarity_with(rk: &Bitmap, rkq: &Bitmap, weights: &[f64]) -> f64 {
    assert_eq!(rk.len(), rkq.len(), "premise key length mismatch");
    rk.iter_ones()
        .zip(weights)
        .filter(|(bit, _)| rkq.get(*bit))
        .map(|(_, w)| w)
        .sum()
}

/// Consequence similarity `S_c` (Eq. 3):
/// `1 − |tq − t| / (tε + 1)`, clamped at 0 for candidates found only
/// after BQP widened the interval beyond `tε`.
pub fn consequence_similarity(query_time: i64, consequence_time: i64, t_eps: u32) -> f64 {
    let sc = 1.0 - (query_time - consequence_time).abs() as f64 / (t_eps as f64 + 1.0);
    sc.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(len: usize, idx: &[usize]) -> Bitmap {
        Bitmap::from_indices(len, idx)
    }

    #[test]
    fn weights_normalise() {
        for wf in WeightFunction::ALL {
            for m in [1usize, 2, 5, 30, 200] {
                let w = wf.weights(m);
                assert_eq!(w.len(), m);
                let sum: f64 = w.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "{} m={m}: sum {sum}", wf.name());
                // Monotone non-decreasing: later ones matter more.
                assert!(w.windows(2).all(|p| p[0] <= p[1] + 1e-15));
            }
        }
    }

    #[test]
    fn paper_linear_example() {
        // §VI.A: for premise key 00011, position 2 weighs 2/3 and
        // position 1 weighs 1/3.
        let w = WeightFunction::Linear.weights(2);
        assert!((w[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((w[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_similarity_examples() {
        // S_r(00011, 00011) = 1; S_r(00011, 00010) = 2/3.
        let rk = bits(5, &[0, 1]);
        assert!((premise_similarity(&rk, &rk, WeightFunction::Linear) - 1.0).abs() < 1e-12);
        let rkq = bits(5, &[1]);
        let s = premise_similarity(&rk, &rkq, WeightFunction::Linear);
        assert!((s - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn section_vi_b_worked_example() {
        // S_p(1000101, 1000011): premise keys 00101 vs 00011, shared
        // bit 0 has rank 1 of 2 -> S_r = 1/3 ~ the paper's 0.33.
        let rk = bits(5, &[0, 2]);
        let rkq = bits(5, &[0, 1]);
        let s = premise_similarity(&rk, &rkq, WeightFunction::Linear);
        assert!((s - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_bounds() {
        let rk = bits(8, &[1, 3, 5]);
        for wf in WeightFunction::ALL {
            assert_eq!(premise_similarity(&rk, &bits(8, &[]), wf), 0.0);
            let full = premise_similarity(&rk, &bits(8, &[1, 3, 5]), wf);
            assert!((full - 1.0).abs() < 1e-12);
            let part = premise_similarity(&rk, &bits(8, &[3]), wf);
            assert!(part > 0.0 && part < 1.0);
        }
    }

    #[test]
    fn empty_premise_is_zero() {
        let rk = bits(8, &[]);
        assert_eq!(
            premise_similarity(&rk, &bits(8, &[0]), WeightFunction::Linear),
            0.0
        );
    }

    #[test]
    fn later_positions_dominate() {
        // Matching only the most recent premise bit beats matching only
        // the oldest, under every weight function.
        let rk = bits(8, &[0, 4, 7]);
        for wf in WeightFunction::ALL {
            let recent = premise_similarity(&rk, &bits(8, &[7]), wf);
            let old = premise_similarity(&rk, &bits(8, &[0]), wf);
            assert!(recent > old, "{}", wf.name());
        }
    }

    #[test]
    fn factorial_weights_match_small_m() {
        // m = 3: 1!, 2!, 3! = 1, 2, 6 -> 1/9, 2/9, 6/9.
        let w = WeightFunction::Factorial.weights(3);
        assert!((w[0] - 1.0 / 9.0).abs() < 1e-12);
        assert!((w[1] - 2.0 / 9.0).abs() < 1e-12);
        assert!((w[2] - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_weights_match_small_m() {
        // m = 3: 2, 4, 8 -> 1/7, 2/7, 4/7.
        let w = WeightFunction::Exponential.weights(3);
        assert!((w[0] - 1.0 / 7.0).abs() < 1e-12);
        assert!((w[2] - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn consequence_similarity_eq3() {
        // tε = 2: exact hit 1.0, distance 1 -> 2/3, distance 3 -> 0.
        assert!((consequence_similarity(100, 100, 2) - 1.0).abs() < 1e-12);
        assert!((consequence_similarity(100, 99, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((consequence_similarity(100, 103, 2) - 0.0).abs() < 1e-12);
        // Widened-interval candidates clamp at 0 instead of going
        // negative.
        assert_eq!(consequence_similarity(100, 90, 2), 0.0);
    }

    #[test]
    fn weight_table_matches_direct_computation() {
        let rk = bits(12, &[0, 3, 7, 11]);
        let rkq = bits(12, &[3, 11]);
        for wf in WeightFunction::ALL {
            let table = WeightTable::build(wf, 8);
            assert_eq!(table.max_ones(), 8);
            for m in 0..=8 {
                assert_eq!(table.weights(m), wf.weights(m).as_slice());
            }
            // Bit-identical scores through the table path.
            let direct = premise_similarity(&rk, &rkq, wf);
            let via_table = premise_similarity_with(&rk, &rkq, table.weights(rk.count_ones()));
            assert_eq!(direct.to_bits(), via_table.to_bits(), "{}", wf.name());
        }
        let empty = WeightTable::build(WeightFunction::Linear, 0);
        assert_eq!(empty.max_ones(), 0);
        assert!(empty.weights(0).is_empty());
    }

    #[test]
    fn weight_function_names() {
        let names: Vec<_> = WeightFunction::ALL.iter().map(|w| w.name()).collect();
        assert_eq!(names, ["linear", "quadratic", "exponential", "factorial"]);
        assert_eq!(WeightFunction::default(), WeightFunction::Linear);
    }
}
