//! The Hybrid Prediction Model itself (§VI): pattern store + TPT +
//! motion-function fallback behind one `predict` call.

use crate::scratch::PredictScratch;
use crate::{
    bqp, fqp, HpmConfig, Prediction, PredictionSource, PredictiveQuery, RankedAnswer, Uncertainty,
    WeightTable,
};
use hpm_geo::{BoundingBox, Point};
use hpm_motion::{LinearMotion, MotionModel, Rmf};
use hpm_patterns::{
    discover, mine_with_threads, DiscoveryParams, MiningParams, RegionId, RegionSet,
    TrajectoryPattern,
};
use hpm_tpt::{KeyTable, PackedTpt, PatternKey, Tpt, TptConfig};
use hpm_trajectory::{TimeOffset, Timestamp, Trajectory};
use std::cell::RefCell;

/// A built Hybrid Prediction Model: discovered frequent regions, mined
/// trajectory patterns, their TPT index, and the query processors.
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    pub(crate) regions: RegionSet,
    pub(crate) patterns: Vec<TrajectoryPattern>,
    pub(crate) key_table: KeyTable,
    /// Pattern key of `patterns[i]`, aligned by index.
    pub(crate) pattern_keys: Vec<PatternKey>,
    /// The builder tree: keeps balance under inserts/deletes.
    pub(crate) tpt: Tpt,
    /// The arena-packed search image queries actually run against;
    /// re-compacted from `tpt` after every mutation.
    pub(crate) packed: PackedTpt,
    /// Precomputed Eq. 1 weight rows for every premise size among
    /// `pattern_keys` (keyed to `config.weight_fn`).
    pub(crate) weight_table: WeightTable,
    pub(crate) config: HpmConfig,
    pub(crate) period: u32,
}

/// Largest number of premise ones among the pattern keys — the weight
/// table must cover every `m` the scorers can encounter.
pub(crate) fn max_premise_ones(pattern_keys: &[PatternKey]) -> usize {
    pattern_keys
        .iter()
        .map(|k| k.premise.count_ones())
        .max()
        .unwrap_or(0)
}

impl hpm_geo::MemUse for HybridPredictor {
    /// Everything the trained index keeps resident: regions, patterns,
    /// both pattern keys and the builder tree, the packed search image
    /// and the weight table. (The per-thread [`PredictScratch`] is
    /// thread-local, not per-predictor, and is not charged here.)
    fn mem_bytes(&self) -> usize {
        use hpm_geo::mem::heap_bytes;
        std::mem::size_of::<Self>()
            + heap_bytes(&self.regions)
            + heap_bytes(&self.patterns)
            + heap_bytes(&self.key_table)
            + heap_bytes(&self.pattern_keys)
            + heap_bytes(&self.tpt)
            + heap_bytes(&self.packed)
            + heap_bytes(&self.weight_table)
    }
}

impl HybridPredictor {
    /// Runs the full offline pipeline over a movement history:
    /// periodic decomposition → DBSCAN frequent regions → Apriori
    /// pattern mining → TPT bulk load.
    pub fn build(
        history: &Trajectory,
        discovery: &DiscoveryParams,
        mining: &MiningParams,
        config: HpmConfig,
    ) -> Self {
        Self::build_with_threads(history, discovery, mining, config, 1)
    }

    /// [`build`](Self::build) with the mining support-counting pass
    /// parallelised over `threads` workers (identical results).
    ///
    /// # Panics
    /// Panics when `threads == 0`.
    pub fn build_with_threads(
        history: &Trajectory,
        discovery: &DiscoveryParams,
        mining_params: &MiningParams,
        config: HpmConfig,
        threads: usize,
    ) -> Self {
        let out = discover(history, discovery);
        let patterns = mine_with_threads(&out.regions, &out.visits, mining_params, threads);
        Self::from_parts(out.regions, patterns, config)
    }

    /// Assembles a predictor from already-discovered regions and
    /// patterns (custom pipelines, persisted pattern sets).
    ///
    /// # Panics
    /// Panics when `config` is inconsistent or any pattern fails
    /// [`TrajectoryPattern::validate`] against `regions`.
    pub fn from_parts(
        regions: RegionSet,
        patterns: Vec<TrajectoryPattern>,
        config: HpmConfig,
    ) -> Self {
        config.validate();
        for (i, p) in patterns.iter().enumerate() {
            if let Err(e) = p.validate(&regions) {
                panic!("pattern {i} invalid: {e}");
            }
        }
        let key_table = KeyTable::build(&regions, &patterns);
        let pattern_keys: Vec<PatternKey> = patterns
            .iter()
            .map(|p| key_table.encode_pattern(p, &regions))
            .collect();
        let tpt = Tpt::bulk_load(
            TptConfig::new(config.tpt_fanout),
            pattern_keys
                .iter()
                .zip(&patterns)
                .enumerate()
                .map(|(i, (k, p))| (k.clone(), p.confidence, i as u32)),
        );
        let period = regions.period();
        let packed = tpt.compact();
        let weight_table = WeightTable::build(config.weight_fn, max_premise_ones(&pattern_keys));
        HybridPredictor {
            regions,
            patterns,
            key_table,
            pattern_keys,
            tpt,
            packed,
            weight_table,
            config,
            period,
        }
    }

    /// Returns the same pattern store under a different query-time
    /// configuration — `k`, thresholds, weight function, and matching
    /// margin are all query-time knobs, so sweeps over them need no
    /// re-discovery or re-mining. (`tpt_fanout` is baked in at build
    /// time; changing it here only affects future
    /// [`insert_patterns`](Self::insert_patterns) splits.)
    ///
    /// # Panics
    /// Panics when `config` is inconsistent.
    pub fn with_config(mut self, config: HpmConfig) -> Self {
        config.validate();
        if config.weight_fn != self.config.weight_fn {
            self.weight_table =
                WeightTable::build(config.weight_fn, max_premise_ones(&self.pattern_keys));
        }
        self.config = config;
        self
    }

    /// Adds freshly mined patterns incrementally (§V.B's dynamic-data
    /// path): encodes and inserts each into the TPT.
    ///
    /// New patterns must only reference existing regions and consequence
    /// time offsets already present in the key table (a full rebuild is
    /// needed when the region or offset vocabulary grows).
    pub fn insert_patterns(&mut self, new_patterns: Vec<TrajectoryPattern>) {
        if new_patterns.is_empty() {
            return;
        }
        for p in new_patterns {
            p.validate(&self.regions)
                .unwrap_or_else(|e| panic!("inserted pattern invalid: {e}"));
            let key = self.key_table.encode_pattern(&p, &self.regions);
            let id = self.patterns.len() as u32;
            self.tpt.insert(key.clone(), p.confidence, id);
            self.pattern_keys.push(key);
            self.patterns.push(p);
        }
        // The packed image is immutable: one repack covers the batch.
        self.packed = self.tpt.compact();
        let max_m = max_premise_ones(&self.pattern_keys);
        if max_m > self.weight_table.max_ones() {
            self.weight_table = WeightTable::build(self.config.weight_fn, max_m);
        }
    }

    /// The discovered frequent regions.
    #[inline]
    pub fn regions(&self) -> &RegionSet {
        &self.regions
    }

    /// The indexed trajectory patterns.
    #[inline]
    pub fn patterns(&self) -> &[TrajectoryPattern] {
        &self.patterns
    }

    /// The builder pattern index (mutations and validation).
    #[inline]
    pub fn tpt(&self) -> &Tpt {
        &self.tpt
    }

    /// The arena-packed search image queries run against.
    #[inline]
    pub fn packed_tpt(&self) -> &PackedTpt {
        &self.packed
    }

    /// The key tables (region + consequence).
    #[inline]
    pub fn key_table(&self) -> &KeyTable {
        &self.key_table
    }

    /// The configuration in use.
    #[inline]
    pub fn config(&self) -> &HpmConfig {
        &self.config
    }

    /// The period `T` the patterns were discovered with.
    #[inline]
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Answers a predictive query (§VI): FQP for prediction lengths
    /// below the distant-time threshold `d`, BQP at or beyond it, and
    /// the motion function whenever no pattern qualifies.
    ///
    /// # Panics
    /// Panics when `query.query_time <= query.current_time` or
    /// `query.recent` is empty.
    pub fn predict(&self, query: &PredictiveQuery<'_>) -> Prediction {
        thread_local! {
            static SCRATCH: RefCell<PredictScratch> = RefCell::new(PredictScratch::new());
        }
        let mut out = Prediction::default();
        SCRATCH.with(|scratch| {
            self.predict_with(query, &mut scratch.borrow_mut(), &mut out);
        });
        out
    }

    /// [`predict`](Self::predict) into caller-owned scratch and output
    /// — the allocation-free hot path: after one warmup query has grown
    /// the scratch buffers, the FQP/BQP pattern paths perform zero heap
    /// allocations (the motion-function fallback still allocates inside
    /// its least-squares fit; it is only taken when no pattern
    /// qualifies). `out` is fully overwritten.
    ///
    /// # Panics
    /// Panics when `query.query_time <= query.current_time` or
    /// `query.recent` is empty.
    pub fn predict_with(
        &self,
        query: &PredictiveQuery<'_>,
        scratch: &mut PredictScratch,
        out: &mut Prediction,
    ) {
        assert!(!query.recent.is_empty(), "query needs recent movements");
        let _span = hpm_obs::span!(crate::metrics::PREDICT_SPAN);
        hpm_obs::counter!(crate::metrics::PREDICT_CALLS).add(1);
        let length = query.prediction_length();
        let PredictScratch { recent_ids, search } = scratch;
        self.recent_regions_into(query.recent, query.current_time, recent_ids);
        let found = if length < self.config.distant_threshold {
            hpm_obs::counter!(crate::metrics::FQP_DISPATCH).add(1);
            fqp::run(self, recent_ids, query, search, out)
                .then_some(PredictionSource::ForwardPatterns)
        } else {
            hpm_obs::counter!(crate::metrics::BQP_DISPATCH).add(1);
            bqp::run(self, recent_ids, query, search, out)
                .then_some(PredictionSource::BackwardPatterns)
        };
        match found {
            Some(source) => out.source = source,
            None => {
                hpm_obs::counter!(crate::metrics::RMF_FALLBACK).add(1);
                self.motion_fallback(query, out);
            }
        }
    }

    /// The frequent regions the object's recent movements fall in,
    /// deduplicated and in region-id order — the query premise of
    /// §V.C.
    pub fn recent_regions(&self, recent: &[Point], current_time: Timestamp) -> Vec<RegionId> {
        let mut ids = Vec::new();
        self.recent_regions_into(recent, current_time, &mut ids);
        ids
    }

    /// [`recent_regions`](Self::recent_regions) into a reusable buffer.
    pub fn recent_regions_into(
        &self,
        recent: &[Point],
        current_time: Timestamp,
        out: &mut Vec<RegionId>,
    ) {
        let n = recent.len();
        out.clear();
        out.extend(recent.iter().enumerate().filter_map(|(i, p)| {
            let back = (n - 1 - i) as Timestamp;
            let ts = current_time.checked_sub(back)?;
            let offset = (ts % self.period as Timestamp) as TimeOffset;
            self.regions.region_at(offset, p, self.config.match_margin)
        }));
        out.sort_unstable();
        out.dedup();
    }

    /// Motion-function answer (Algorithm 2/3 fallback): RMF over the
    /// recent window, degrading to a linear fit and finally to the last
    /// known position when the window is too short to fit anything.
    ///
    /// The answer carries a residual-calibrated error ellipse
    /// ([`Uncertainty::ellipse`]) sized from the one-step-ahead replay
    /// residuals of the recent window and widened per rollout step; a
    /// frozen answer (nothing fits) is a certain point claim.
    fn motion_fallback(&self, query: &PredictiveQuery<'_>, out: &mut Prediction) {
        let steps = query.prediction_length();
        let (location, uncertainty) = match self.fitted_motion(query.recent) {
            Some(m) => {
                let location = m.predict(steps);
                let sigma = self.fallback_residual_sigma(query.recent);
                (location, Uncertainty::ellipse(location, sigma, steps))
            }
            None => {
                let last = *query.recent.last().expect("non-empty recent");
                (last, Uncertainty::point_claim(last))
            }
        };
        out.answers.clear();
        out.answers.push(RankedAnswer {
            location,
            score: 0.0,
            pattern: None,
            uncertainty,
        });
        out.source = PredictionSource::MotionFunction;
    }

    /// Per-axis RMS one-step-ahead residual of the fallback motion
    /// chain over `recent`: for every proper prefix that fits a model,
    /// the fitted model's 1-step prediction is replayed against the
    /// sample that actually followed. Zero (a certain claim) when no
    /// prefix fits — the window is too short to measure anything.
    ///
    /// This is the calibration source for the fallback error ellipse:
    /// [`Rmf`]/[`LinearMotion`] expose no residuals, so they are
    /// re-measured by prefix refits, which are deterministic in
    /// `recent` exactly like the fallback's own fit.
    pub fn fallback_residual_sigma(&self, recent: &[Point]) -> Point {
        let mut sum = Point::ORIGIN;
        let mut n = 0u32;
        for t in 1..recent.len() {
            let Some(m) = self.fitted_motion(&recent[..t]) else {
                continue;
            };
            let err = recent[t] - m.predict(1);
            sum.x += err.x * err.x;
            sum.y += err.y * err.y;
            n += 1;
        }
        if n == 0 {
            Point::ORIGIN
        } else {
            Point::new((sum.x / f64::from(n)).sqrt(), (sum.y / f64::from(n)).sqrt())
        }
    }

    /// The motion model [`motion_fallback`](Self::motion_fallback) (and
    /// therefore [`predict`](Self::predict), whenever no pattern
    /// qualifies) answers from: RMF, degrading to a linear fit. `None`
    /// when the window is too short to fit either — the fallback then
    /// freezes at the last known position.
    ///
    /// Fitting is deterministic in `recent`, so a model fitted once at
    /// report time answers exactly like the per-query fit.
    fn fitted_motion(&self, recent: &[Point]) -> Option<FittedMotion> {
        Rmf::fit(recent, self.config.rmf_retrospect)
            .map(FittedMotion::Rmf)
            .or_else(|| LinearMotion::fit(recent).map(FittedMotion::Linear))
    }

    /// Bounding box of every location the predictor can answer with on
    /// the **pattern** paths (FQP/BQP): the discovered frequent-region
    /// centroids. `None` when no regions were discovered (an untrained
    /// or pattern-free predictor always answers from the motion
    /// function).
    ///
    /// Together with [`fallback_envelope`](Self::fallback_envelope)
    /// this bounds every possible [`predict`](Self::predict) answer,
    /// which is what lets `hpm-objectstore`'s predictive index prune
    /// objects without re-predicting them.
    pub fn centroid_envelope(&self) -> Option<BoundingBox> {
        let mut all = self.regions.all().iter();
        let first = all.next()?;
        let mut bb = BoundingBox::from_point(first.centroid);
        for r in all {
            bb.expand(r.centroid);
        }
        Some(bb)
    }

    /// Bounding box of every frequent region's full extent — covers
    /// not just the centroids ([`centroid_envelope`]) but the whole
    /// uncertainty region a pattern answer can claim, since pattern
    /// answers carry the supporting consequence region's bbox. `None`
    /// when no regions were discovered.
    ///
    /// [`centroid_envelope`]: Self::centroid_envelope
    pub fn region_envelope(&self) -> Option<BoundingBox> {
        let mut all = self.regions.all().iter();
        let first = all.next()?;
        let mut bb = first.bbox;
        for r in all {
            bb = bb.union(&r.bbox);
        }
        Some(bb)
    }

    /// Bounding box of the motion-function fallback's answers for every
    /// prediction length `1..=horizon` over this recent window —
    /// exactly the locations [`predict`](Self::predict) returns when no
    /// pattern qualifies, for query times up to `horizon` steps past
    /// `current_time`.
    ///
    /// The box is computed by fitting the fallback's motion-model chain
    /// once (deterministic, so identical to the per-query fit) and
    /// rolling it forward step by step; RMF rollouts are recursive, so
    /// no closed-form bound exists and beyond-`horizon` query times are
    /// **not** covered — an index built on this envelope must treat
    /// them as unprunable.
    ///
    /// # Panics
    /// Panics when `recent` is empty or `horizon == 0`.
    pub fn fallback_envelope(&self, recent: &[Point], horizon: u32) -> BoundingBox {
        assert!(horizon >= 1, "horizon must be at least 1");
        let last = *recent.last().expect("non-empty recent");
        let Some(model) = self.fitted_motion(recent) else {
            return BoundingBox::from_point(last);
        };
        let mut bb = BoundingBox::from_point(model.predict(1));
        for steps in 2..=horizon {
            bb.expand(model.predict(steps));
        }
        bb
    }
}

/// A fitted fallback motion model (the RMF-else-linear chain of
/// [`HybridPredictor::motion_fallback`]).
enum FittedMotion {
    Rmf(Rmf),
    Linear(LinearMotion),
}

impl FittedMotion {
    fn predict(&self, steps: u32) -> Point {
        match self {
            FittedMotion::Rmf(m) => m.predict(steps),
            FittedMotion::Linear(m) => m.predict(steps),
        }
    }
}

/// Ranks pattern candidates by score (descending, pattern id as the
/// deterministic tiebreak) and materialises consequence-centre answers
/// for the top `k` *distinct consequence regions*. Shared by FQP and
/// BQP.
///
/// Many patterns can share one consequence (Table III's duplicate
/// keys); returning the same centre `k` times would waste the caller's
/// answer budget, so each region appears once, represented by its
/// best-scored supporting pattern.
pub(crate) fn rank_answers_into(
    predictor: &HybridPredictor,
    scored: &mut [(u32, f64)],
    k: usize,
    seen: &mut Vec<RegionId>,
    out: &mut Vec<RankedAnswer>,
) {
    let _span = hpm_obs::span!(crate::metrics::RANK_SPAN);
    scored.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite scores")
            .then_with(|| a.0.cmp(&b.0))
    });
    seen.clear();
    out.clear();
    for &(pattern, score) in scored.iter() {
        let consequence = predictor.patterns[pattern as usize].consequence;
        if seen.contains(&consequence) {
            continue;
        }
        seen.push(consequence);
        let region = predictor.regions.get(consequence);
        out.push(RankedAnswer {
            location: region.centroid,
            score,
            pattern: Some(pattern),
            // Mass is normalised over the emitted set below, once the
            // total of the surviving scores is known.
            uncertainty: Uncertainty {
                region: region.bbox,
                mass: 0.0,
            },
        });
        if out.len() == k {
            break;
        }
    }
    // Normalise the ranked scores into probability masses: each
    // answer's share of the emitted total (uniform when all scores
    // are zero). Pure arithmetic over `out` — the hot path stays
    // allocation-free.
    let total: f64 = out.iter().map(|a| a.score).sum();
    let n = out.len();
    for a in out.iter_mut() {
        a.uncertainty.mass = if total > 0.0 {
            a.score / total
        } else {
            1.0 / n as f64
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{commuter_predictor, COMMUTER_PERIOD};

    #[test]
    fn build_pipeline_produces_patterns() {
        let p = commuter_predictor();
        assert!(!p.patterns().is_empty());
        assert!(!p.regions().is_empty());
        assert_eq!(p.tpt().len(), p.patterns().len());
        assert_eq!(p.period(), COMMUTER_PERIOD);
        p.tpt().validate().unwrap();
    }

    #[test]
    fn near_query_uses_forward_patterns() {
        let p = commuter_predictor();
        // The object is at "home" (offset 0) and "road" (offset 1) of
        // day 50; ask about offset 2 (length 1 < d = 3 -> FQP).
        let recent = [Point::new(0.0, 0.0), Point::new(50.0, 0.0)];
        let day = 50 * COMMUTER_PERIOD as Timestamp;
        let q = PredictiveQuery {
            recent: &recent,
            current_time: day + 1,
            query_time: day + 2,
        };
        let pred = p.predict(&q);
        assert_eq!(pred.source, PredictionSource::ForwardPatterns);
        // Offset 2 is "work" at x = 100: the answer must be its centre.
        assert!(
            pred.best().distance(&Point::new(100.0, 0.0)) < 2.0,
            "predicted {}",
            pred.best()
        );
    }

    #[test]
    fn distant_query_uses_backward_patterns() {
        let p = commuter_predictor();
        let recent = [Point::new(0.0, 0.0)];
        let day = 50 * COMMUTER_PERIOD as Timestamp;
        // Distant threshold in the fixture config is 2.
        let q = PredictiveQuery {
            recent: &recent,
            current_time: day,
            query_time: day + 3,
        };
        let pred = p.predict(&q);
        assert_eq!(pred.source, PredictionSource::BackwardPatterns);
    }

    #[test]
    fn unknown_movements_fall_back_to_motion() {
        let p = commuter_predictor();
        // Recent movements nowhere near any frequent region, at offsets
        // with no matching premise -> no pattern qualifies for FQP.
        let recent = [Point::new(900.0, 900.0), Point::new(905.0, 900.0)];
        let day = 50 * COMMUTER_PERIOD as Timestamp;
        let q = PredictiveQuery {
            recent: &recent,
            current_time: day + 1,
            query_time: day + 2,
        };
        let pred = p.predict(&q);
        assert_eq!(pred.source, PredictionSource::MotionFunction);
        assert!(pred.best().is_finite());
        assert_eq!(pred.answers[0].pattern, None);
    }

    #[test]
    fn recent_regions_dedupes_and_sorts() {
        let p = commuter_predictor();
        // Samples at offsets 0 and 1 near home and road.
        let recent = [Point::new(0.1, 0.0), Point::new(50.1, 0.0)];
        let day = 10 * COMMUTER_PERIOD as Timestamp;
        let ids = p.recent_regions(&recent, day + 1);
        assert!(!ids.is_empty());
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn top_k_returns_distinct_regions() {
        let mut cfg = crate::test_fixtures::commuter_config();
        cfg.k = 3;
        let p = crate::test_fixtures::commuter_predictor_with(cfg);
        // Query offset 3 splits between "pub" and "gym": two distinct
        // consequence regions exist there.
        let recent = [Point::new(0.0, 0.0), Point::new(50.0, 0.0)];
        let day = 50 * COMMUTER_PERIOD as Timestamp;
        let q = PredictiveQuery {
            recent: &recent,
            current_time: day + 1,
            query_time: day + 3,
        };
        let pred = p.predict(&q);
        assert_eq!(pred.answers.len(), 2, "answers: {:?}", pred.answers);
        // Distinct locations, descending scores.
        assert_ne!(pred.answers[0].location, pred.answers[1].location);
        assert!(pred.answers[0].score >= pred.answers[1].score);
    }

    #[test]
    fn insert_patterns_extends_index() {
        let mut p = commuter_predictor();
        let before = p.patterns().len();
        let extra = p.patterns()[0].clone();
        p.insert_patterns(vec![extra]);
        assert_eq!(p.patterns().len(), before + 1);
        assert_eq!(p.tpt().len(), before + 1);
        p.tpt().validate().unwrap();
    }

    #[test]
    fn pattern_answers_carry_normalised_mass_and_region_extent() {
        let mut cfg = crate::test_fixtures::commuter_config();
        cfg.k = 3;
        let p = crate::test_fixtures::commuter_predictor_with(cfg);
        let recent = [Point::new(0.0, 0.0), Point::new(50.0, 0.0)];
        let day = 50 * COMMUTER_PERIOD as Timestamp;
        let q = PredictiveQuery {
            recent: &recent,
            current_time: day + 1,
            query_time: day + 3,
        };
        let pred = p.predict(&q);
        assert!(pred.from_patterns());
        assert!(pred.answers.len() >= 2);
        let total: f64 = pred.answers.iter().map(|a| a.uncertainty.mass).sum();
        assert!((total - 1.0).abs() < 1e-12, "masses sum to {total}");
        for a in &pred.answers {
            // Each answer's region is its consequence region's bbox,
            // containing the centroid the point answer reports.
            assert!(a.uncertainty.region.contains(&a.location));
            assert!(a.uncertainty.mass > 0.0);
        }
        // Masses follow the ranking: best answer claims the most.
        assert!(pred.answers[0].uncertainty.mass >= pred.answers[1].uncertainty.mass);
    }

    #[test]
    fn fallback_answer_carries_residual_ellipse() {
        let p = commuter_predictor();
        // Noisy drift far from any pattern: the fit has residuals.
        let recent = [
            Point::new(900.0, 900.0),
            Point::new(905.0, 901.0),
            Point::new(909.0, 899.5),
            Point::new(915.0, 900.5),
        ];
        let day = 50 * COMMUTER_PERIOD as Timestamp;
        let near = p.predict(&PredictiveQuery {
            recent: &recent,
            current_time: day + 1,
            query_time: day + 2,
        });
        assert_eq!(near.source, PredictionSource::MotionFunction);
        let sigma = p.fallback_residual_sigma(&recent);
        assert!(sigma.x > 0.0, "jittered drift must leave x residuals");
        let u = near.answers[0].uncertainty;
        assert!(u.region.contains(&near.best()));
        assert!(u.region.width() > 0.0);
        assert!(u.mass > 0.0 && u.mass <= 1.0);
        // Another step out widens the ellipse (√steps growth).
        let far = p.predict(&PredictiveQuery {
            recent: &recent,
            current_time: day + 1,
            query_time: day + 3,
        });
        if far.source == PredictionSource::MotionFunction {
            assert!(far.answers[0].uncertainty.region.width() > u.region.width());
        }
    }

    #[test]
    fn frozen_fallback_is_certain_point_claim() {
        let p = commuter_predictor();
        // A single sample fits nothing: the fallback freezes.
        let recent = [Point::new(900.0, 900.0)];
        let day = 50 * COMMUTER_PERIOD as Timestamp;
        let pred = p.predict(&PredictiveQuery {
            recent: &recent,
            current_time: day + 1,
            query_time: day + 2,
        });
        assert_eq!(pred.source, PredictionSource::MotionFunction);
        assert_eq!(
            pred.answers[0].uncertainty,
            Uncertainty::point_claim(recent[0])
        );
        assert_eq!(p.fallback_residual_sigma(&recent), Point::ORIGIN);
    }

    #[test]
    fn region_envelope_covers_centroid_envelope() {
        let p = commuter_predictor();
        let centroids = p.centroid_envelope().unwrap();
        let regions = p.region_envelope().unwrap();
        assert_eq!(regions.union(&centroids), regions);
        for r in p.regions().all() {
            assert!(regions.union(&r.bbox) == regions);
        }
    }

    #[test]
    #[should_panic(expected = "recent movements")]
    fn empty_recent_rejected() {
        let p = commuter_predictor();
        let q = PredictiveQuery {
            recent: &[],
            current_time: 0,
            query_time: 1,
        };
        p.predict(&q);
    }
}
