//! The Hybrid Prediction Model itself (§VI): pattern store + TPT +
//! motion-function fallback behind one `predict` call.

use crate::{bqp, fqp, HpmConfig, Prediction, PredictionSource, PredictiveQuery, RankedAnswer};
use hpm_geo::Point;
use hpm_motion::{LinearMotion, MotionModel, Rmf};
use hpm_patterns::{
    discover, mine_with_threads, DiscoveryParams, MiningParams, RegionId, RegionSet,
    TrajectoryPattern,
};
use hpm_tpt::{KeyTable, PatternKey, Tpt, TptConfig};
use hpm_trajectory::{TimeOffset, Timestamp, Trajectory};

/// A built Hybrid Prediction Model: discovered frequent regions, mined
/// trajectory patterns, their TPT index, and the query processors.
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    pub(crate) regions: RegionSet,
    pub(crate) patterns: Vec<TrajectoryPattern>,
    pub(crate) key_table: KeyTable,
    /// Pattern key of `patterns[i]`, aligned by index.
    pub(crate) pattern_keys: Vec<PatternKey>,
    pub(crate) tpt: Tpt,
    pub(crate) config: HpmConfig,
    pub(crate) period: u32,
}

impl HybridPredictor {
    /// Runs the full offline pipeline over a movement history:
    /// periodic decomposition → DBSCAN frequent regions → Apriori
    /// pattern mining → TPT bulk load.
    pub fn build(
        history: &Trajectory,
        discovery: &DiscoveryParams,
        mining: &MiningParams,
        config: HpmConfig,
    ) -> Self {
        Self::build_with_threads(history, discovery, mining, config, 1)
    }

    /// [`build`](Self::build) with the mining support-counting pass
    /// parallelised over `threads` workers (identical results).
    ///
    /// # Panics
    /// Panics when `threads == 0`.
    pub fn build_with_threads(
        history: &Trajectory,
        discovery: &DiscoveryParams,
        mining_params: &MiningParams,
        config: HpmConfig,
        threads: usize,
    ) -> Self {
        let out = discover(history, discovery);
        let patterns = mine_with_threads(&out.regions, &out.visits, mining_params, threads);
        Self::from_parts(out.regions, patterns, config)
    }

    /// Assembles a predictor from already-discovered regions and
    /// patterns (custom pipelines, persisted pattern sets).
    ///
    /// # Panics
    /// Panics when `config` is inconsistent or any pattern fails
    /// [`TrajectoryPattern::validate`] against `regions`.
    pub fn from_parts(
        regions: RegionSet,
        patterns: Vec<TrajectoryPattern>,
        config: HpmConfig,
    ) -> Self {
        config.validate();
        for (i, p) in patterns.iter().enumerate() {
            if let Err(e) = p.validate(&regions) {
                panic!("pattern {i} invalid: {e}");
            }
        }
        let key_table = KeyTable::build(&regions, &patterns);
        let pattern_keys: Vec<PatternKey> = patterns
            .iter()
            .map(|p| key_table.encode_pattern(p, &regions))
            .collect();
        let tpt = Tpt::bulk_load(
            TptConfig::new(config.tpt_fanout),
            pattern_keys
                .iter()
                .zip(&patterns)
                .enumerate()
                .map(|(i, (k, p))| (k.clone(), p.confidence, i as u32)),
        );
        let period = regions.period();
        HybridPredictor {
            regions,
            patterns,
            key_table,
            pattern_keys,
            tpt,
            config,
            period,
        }
    }

    /// Returns the same pattern store under a different query-time
    /// configuration — `k`, thresholds, weight function, and matching
    /// margin are all query-time knobs, so sweeps over them need no
    /// re-discovery or re-mining. (`tpt_fanout` is baked in at build
    /// time; changing it here only affects future
    /// [`insert_patterns`](Self::insert_patterns) splits.)
    ///
    /// # Panics
    /// Panics when `config` is inconsistent.
    pub fn with_config(mut self, config: HpmConfig) -> Self {
        config.validate();
        self.config = config;
        self
    }

    /// Adds freshly mined patterns incrementally (§V.B's dynamic-data
    /// path): encodes and inserts each into the TPT.
    ///
    /// New patterns must only reference existing regions and consequence
    /// time offsets already present in the key table (a full rebuild is
    /// needed when the region or offset vocabulary grows).
    pub fn insert_patterns(&mut self, new_patterns: Vec<TrajectoryPattern>) {
        for p in new_patterns {
            p.validate(&self.regions)
                .unwrap_or_else(|e| panic!("inserted pattern invalid: {e}"));
            let key = self.key_table.encode_pattern(&p, &self.regions);
            let id = self.patterns.len() as u32;
            self.tpt.insert(key.clone(), p.confidence, id);
            self.pattern_keys.push(key);
            self.patterns.push(p);
        }
    }

    /// The discovered frequent regions.
    #[inline]
    pub fn regions(&self) -> &RegionSet {
        &self.regions
    }

    /// The indexed trajectory patterns.
    #[inline]
    pub fn patterns(&self) -> &[TrajectoryPattern] {
        &self.patterns
    }

    /// The pattern index.
    #[inline]
    pub fn tpt(&self) -> &Tpt {
        &self.tpt
    }

    /// The key tables (region + consequence).
    #[inline]
    pub fn key_table(&self) -> &KeyTable {
        &self.key_table
    }

    /// The configuration in use.
    #[inline]
    pub fn config(&self) -> &HpmConfig {
        &self.config
    }

    /// The period `T` the patterns were discovered with.
    #[inline]
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Answers a predictive query (§VI): FQP for prediction lengths
    /// below the distant-time threshold `d`, BQP at or beyond it, and
    /// the motion function whenever no pattern qualifies.
    ///
    /// # Panics
    /// Panics when `query.query_time <= query.current_time` or
    /// `query.recent` is empty.
    pub fn predict(&self, query: &PredictiveQuery<'_>) -> Prediction {
        assert!(!query.recent.is_empty(), "query needs recent movements");
        let _span = hpm_obs::span!(crate::metrics::PREDICT_SPAN);
        hpm_obs::counter!(crate::metrics::PREDICT_CALLS).add(1);
        let length = query.prediction_length();
        let recent_ids = self.recent_regions(query.recent, query.current_time);
        let from_patterns = if length < self.config.distant_threshold {
            hpm_obs::counter!(crate::metrics::FQP_DISPATCH).add(1);
            fqp::run(self, &recent_ids, query).map(|answers| (answers, PredictionSource::ForwardPatterns))
        } else {
            hpm_obs::counter!(crate::metrics::BQP_DISPATCH).add(1);
            bqp::run(self, &recent_ids, query).map(|answers| (answers, PredictionSource::BackwardPatterns))
        };
        match from_patterns {
            Some((answers, source)) => Prediction { answers, source },
            None => {
                hpm_obs::counter!(crate::metrics::RMF_FALLBACK).add(1);
                self.motion_fallback(query)
            }
        }
    }

    /// The frequent regions the object's recent movements fall in,
    /// deduplicated and in region-id order — the query premise of
    /// §V.C.
    pub fn recent_regions(&self, recent: &[Point], current_time: Timestamp) -> Vec<RegionId> {
        let n = recent.len();
        let mut ids: Vec<RegionId> = recent
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let back = (n - 1 - i) as Timestamp;
                let ts = current_time.checked_sub(back)?;
                let offset = (ts % self.period as Timestamp) as TimeOffset;
                self.regions.region_at(offset, p, self.config.match_margin)
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Motion-function answer (Algorithm 2/3 fallback): RMF over the
    /// recent window, degrading to a linear fit and finally to the last
    /// known position when the window is too short to fit anything.
    fn motion_fallback(&self, query: &PredictiveQuery<'_>) -> Prediction {
        let steps = query.prediction_length();
        let location = Rmf::fit(query.recent, self.config.rmf_retrospect)
            .map(|m| m.predict(steps))
            .or_else(|| LinearMotion::fit(query.recent).map(|m| m.predict(steps)))
            .unwrap_or_else(|| *query.recent.last().expect("non-empty recent"));
        Prediction {
            answers: vec![RankedAnswer {
                location,
                score: 0.0,
                pattern: None,
            }],
            source: PredictionSource::MotionFunction,
        }
    }
}

/// Ranks pattern candidates by score (descending, pattern id as the
/// deterministic tiebreak) and materialises consequence-centre answers
/// for the top `k` *distinct consequence regions*. Shared by FQP and
/// BQP.
///
/// Many patterns can share one consequence (Table III's duplicate
/// keys); returning the same centre `k` times would waste the caller's
/// answer budget, so each region appears once, represented by its
/// best-scored supporting pattern.
pub(crate) fn rank_answers(
    predictor: &HybridPredictor,
    mut scored: Vec<(u32, f64)>,
    k: usize,
) -> Vec<RankedAnswer> {
    let _span = hpm_obs::span!(crate::metrics::RANK_SPAN);
    scored.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite scores")
            .then_with(|| a.0.cmp(&b.0))
    });
    let mut seen: Vec<hpm_patterns::RegionId> = Vec::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for (pattern, score) in scored {
        let consequence = predictor.patterns[pattern as usize].consequence;
        if seen.contains(&consequence) {
            continue;
        }
        seen.push(consequence);
        out.push(RankedAnswer {
            location: predictor.regions.get(consequence).centroid,
            score,
            pattern: Some(pattern),
        });
        if out.len() == k {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{commuter_predictor, COMMUTER_PERIOD};

    #[test]
    fn build_pipeline_produces_patterns() {
        let p = commuter_predictor();
        assert!(!p.patterns().is_empty());
        assert!(!p.regions().is_empty());
        assert_eq!(p.tpt().len(), p.patterns().len());
        assert_eq!(p.period(), COMMUTER_PERIOD);
        p.tpt().validate().unwrap();
    }

    #[test]
    fn near_query_uses_forward_patterns() {
        let p = commuter_predictor();
        // The object is at "home" (offset 0) and "road" (offset 1) of
        // day 50; ask about offset 2 (length 1 < d = 3 -> FQP).
        let recent = [Point::new(0.0, 0.0), Point::new(50.0, 0.0)];
        let day = 50 * COMMUTER_PERIOD as Timestamp;
        let q = PredictiveQuery {
            recent: &recent,
            current_time: day + 1,
            query_time: day + 2,
        };
        let pred = p.predict(&q);
        assert_eq!(pred.source, PredictionSource::ForwardPatterns);
        // Offset 2 is "work" at x = 100: the answer must be its centre.
        assert!(
            pred.best().distance(&Point::new(100.0, 0.0)) < 2.0,
            "predicted {}",
            pred.best()
        );
    }

    #[test]
    fn distant_query_uses_backward_patterns() {
        let p = commuter_predictor();
        let recent = [Point::new(0.0, 0.0)];
        let day = 50 * COMMUTER_PERIOD as Timestamp;
        // Distant threshold in the fixture config is 2.
        let q = PredictiveQuery {
            recent: &recent,
            current_time: day,
            query_time: day + 3,
        };
        let pred = p.predict(&q);
        assert_eq!(pred.source, PredictionSource::BackwardPatterns);
    }

    #[test]
    fn unknown_movements_fall_back_to_motion() {
        let p = commuter_predictor();
        // Recent movements nowhere near any frequent region, at offsets
        // with no matching premise -> no pattern qualifies for FQP.
        let recent = [Point::new(900.0, 900.0), Point::new(905.0, 900.0)];
        let day = 50 * COMMUTER_PERIOD as Timestamp;
        let q = PredictiveQuery {
            recent: &recent,
            current_time: day + 1,
            query_time: day + 2,
        };
        let pred = p.predict(&q);
        assert_eq!(pred.source, PredictionSource::MotionFunction);
        assert!(pred.best().is_finite());
        assert_eq!(pred.answers[0].pattern, None);
    }

    #[test]
    fn recent_regions_dedupes_and_sorts() {
        let p = commuter_predictor();
        // Samples at offsets 0 and 1 near home and road.
        let recent = [
            Point::new(0.1, 0.0),
            Point::new(50.1, 0.0),
        ];
        let day = 10 * COMMUTER_PERIOD as Timestamp;
        let ids = p.recent_regions(&recent, day + 1);
        assert!(!ids.is_empty());
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn top_k_returns_distinct_regions() {
        let mut cfg = crate::test_fixtures::commuter_config();
        cfg.k = 3;
        let p = crate::test_fixtures::commuter_predictor_with(cfg);
        // Query offset 3 splits between "pub" and "gym": two distinct
        // consequence regions exist there.
        let recent = [Point::new(0.0, 0.0), Point::new(50.0, 0.0)];
        let day = 50 * COMMUTER_PERIOD as Timestamp;
        let q = PredictiveQuery {
            recent: &recent,
            current_time: day + 1,
            query_time: day + 3,
        };
        let pred = p.predict(&q);
        assert_eq!(pred.answers.len(), 2, "answers: {:?}", pred.answers);
        // Distinct locations, descending scores.
        assert_ne!(pred.answers[0].location, pred.answers[1].location);
        assert!(pred.answers[0].score >= pred.answers[1].score);
    }

    #[test]
    fn insert_patterns_extends_index() {
        let mut p = commuter_predictor();
        let before = p.patterns().len();
        let extra = p.patterns()[0].clone();
        p.insert_patterns(vec![extra]);
        assert_eq!(p.patterns().len(), before + 1);
        assert_eq!(p.tpt().len(), before + 1);
        p.tpt().validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "recent movements")]
    fn empty_recent_rejected() {
        let p = commuter_predictor();
        let q = PredictiveQuery {
            recent: &[],
            current_time: 0,
            query_time: 1,
        };
        p.predict(&q);
    }
}
