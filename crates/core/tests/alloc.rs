//! Allocation-count regression test for the predict hot path.
//!
//! Installs [`hpm_check::alloc::CountingAllocator`] as the global
//! allocator (hence: a dedicated integration-test file with a single
//! test, so no concurrent test's allocations bleed into the measured
//! window) and asserts that after warmup:
//!
//! * [`HybridPredictor::predict_with`] performs **zero** heap
//!   allocations per call, for both FQP and BQP queries;
//! * the by-value [`HybridPredictor::predict`] wrapper allocates only
//!   the returned `Prediction`'s answer vector (≤ 2 allocations per
//!   call).
//!
//! The motion-function fallback is exempt by design (the RMF
//! least-squares fit allocates; see DESIGN.md "Memory layout"), so the
//! fixture guarantees every measured query is answered by patterns.

use hpm_check::alloc::CountingAllocator;
use hpm_core::{
    HpmConfig, HybridPredictor, PredictScratch, Prediction, PredictiveQuery, WeightFunction,
};
use hpm_geo::{BoundingBox, Point};
use hpm_patterns::{FrequentRegion, RegionId, RegionSet, TrajectoryPattern};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Hand-built three-region commuter world (period 3): R0@0 → R1@1 and
/// R0∧R1 → R2@2, so both offsets 1 and 2 have consequences.
fn predictor() -> HybridPredictor {
    let mk = |id: u32, offset: u32, cx: f64| FrequentRegion {
        id: RegionId(id),
        offset,
        local_index: 0,
        centroid: Point::new(cx, cx),
        bbox: BoundingBox {
            min: Point::new(cx - 1.0, cx - 1.0),
            max: Point::new(cx + 1.0, cx + 1.0),
        },
        support: 5,
    };
    let regions = RegionSet::new(vec![mk(0, 0, 0.0), mk(1, 1, 50.0), mk(2, 2, 100.0)], 3);
    let patterns = vec![
        TrajectoryPattern {
            premise: vec![RegionId(0)],
            consequence: RegionId(1),
            confidence: 0.9,
            support: 5,
        },
        TrajectoryPattern {
            premise: vec![RegionId(0), RegionId(1)],
            consequence: RegionId(2),
            confidence: 0.5,
            support: 5,
        },
    ];
    HybridPredictor::from_parts(
        regions,
        patterns,
        HpmConfig {
            k: 2,
            distant_threshold: 2,
            time_relaxation: 1,
            weight_fn: WeightFunction::Linear,
            match_margin: 0.5,
            rmf_retrospect: 2,
            tpt_fanout: 8,
        },
    )
}

#[test]
fn predict_hot_path_is_allocation_free_after_warmup() {
    let p = predictor();
    let recent = [Point::new(0.0, 0.0)];
    // Prediction length 1 ≤ d = 2: Forward Query Processing.
    let fqp = PredictiveQuery {
        recent: &recent,
        current_time: 0,
        query_time: 1,
    };
    // Prediction length 7 > d = 2: Backward Query Processing.
    let bqp = PredictiveQuery {
        recent: &recent,
        current_time: 0,
        query_time: 7,
    };
    let mut scratch = PredictScratch::new();
    let mut out = Prediction::default();

    // Warmup: grows every scratch buffer to steady-state capacity and
    // registers the observability handles (cold paths may allocate).
    for _ in 0..4 {
        p.predict_with(&fqp, &mut scratch, &mut out);
        assert!(out.from_patterns(), "fixture must not hit the fallback");
        p.predict_with(&bqp, &mut scratch, &mut out);
        assert!(out.from_patterns(), "fixture must not hit the fallback");
    }

    // The counter is process-global, so the libtest harness thread can
    // inject the odd stray allocation into a window. Taking the best of
    // several windows filters that out while still catching any real
    // per-call allocation (which would show up in *every* window,
    // ≥ 1024 times).
    let grew = (0..8)
        .map(|_| {
            let before = ALLOC.allocations();
            for _ in 0..512 {
                p.predict_with(&fqp, &mut scratch, &mut out);
                p.predict_with(&bqp, &mut scratch, &mut out);
            }
            ALLOC.allocations() - before
        })
        .min()
        .unwrap();
    assert_eq!(
        grew, 0,
        "warm predict_with made {grew} heap allocations over 1024 calls"
    );

    // The by-value wrapper reuses a thread-local scratch; only the
    // returned Prediction's answer vector may allocate.
    let _ = p.predict(&fqp); // warm the thread-local scratch
    const CALLS: u64 = 64;
    let before = ALLOC.allocations();
    for _ in 0..CALLS {
        std::hint::black_box(p.predict(&fqp));
    }
    let grew = ALLOC.allocations() - before;
    assert!(
        grew <= 2 * CALLS,
        "warm predict() made {grew} heap allocations over {CALLS} calls \
         (expected ≤ 2 per call: the returned answer vector)"
    );
}
