//! Differential tests: the TPT-backed query processors against
//! straight-from-the-paper reference implementations that scan every
//! pattern with no index and no shared code paths.

use hpm_check::prelude::*;
use hpm_core::{
    consequence_similarity, premise_similarity, HpmConfig, HybridPredictor, PredictionSource,
    PredictiveQuery, RankedAnswer, Uncertainty,
};
use hpm_geo::Point;
use hpm_patterns::{RegionId, RegionSet, TrajectoryPattern};
use hpm_tpt::KeyTable;

/// Reference FQP (Algorithm 2): filter all patterns by "consequence
/// offset == tq offset AND premise shares a region with the recent
/// visits", score by Eq. 2, rank, dedupe by consequence region, top-k.
#[allow(clippy::too_many_arguments)]
fn reference_fqp(
    regions: &RegionSet,
    patterns: &[TrajectoryPattern],
    table: &KeyTable,
    recent_ids: &[RegionId],
    tq_offset: u32,
    config: &HpmConfig,
) -> Option<Vec<RankedAnswer>> {
    if recent_ids.is_empty() {
        return None;
    }
    let rkq = table.premise_key(recent_ids.iter().copied());
    let mut scored: Vec<(u32, f64)> = patterns
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            p.consequence_offset(regions) == tq_offset
                && p.premise.iter().any(|id| recent_ids.contains(id))
        })
        .map(|(i, p)| {
            let rk = table.premise_key(p.premise.iter().copied());
            (
                i as u32,
                premise_similarity(&rk, &rkq, config.weight_fn) * p.confidence,
            )
        })
        .collect();
    if scored.is_empty() {
        return None;
    }
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    Some(dedupe_top_k(regions, patterns, scored, config.k))
}

/// Reference BQP (Algorithm 3 + Eq. 5) with the same widening rule.
fn reference_bqp(
    regions: &RegionSet,
    patterns: &[TrajectoryPattern],
    table: &KeyTable,
    recent_ids: &[RegionId],
    tc: i64,
    tq: i64,
    config: &HpmConfig,
) -> Option<Vec<RankedAnswer>> {
    let period = i64::from(regions.period());
    let t_eps = i64::from(config.time_relaxation);
    let rkq = table.premise_key(recent_ids.iter().copied());
    let tq_offset = tq.rem_euclid(period);
    let mut i = 1i64;
    loop {
        let lo = (tq - i * t_eps).max(tc + 1);
        let hi = tq + i * t_eps;
        let offsets: std::collections::HashSet<i64> = (lo..=hi)
            .take(period as usize)
            .map(|t| t.rem_euclid(period))
            .collect();
        let mut scored: Vec<(u32, f64)> = patterns
            .iter()
            .enumerate()
            .filter(|(_, p)| offsets.contains(&i64::from(p.consequence_offset(regions))))
            .map(|(idx, p)| {
                let rk = table.premise_key(p.premise.iter().copied());
                let sr = premise_similarity(&rk, &rkq, config.weight_fn);
                let t_off = i64::from(p.consequence_offset(regions));
                let delta = (t_off - tq_offset).rem_euclid(period);
                let dist = delta.min(period - delta);
                let sc = consequence_similarity(0, dist, config.time_relaxation);
                let pen = (f64::from(config.distant_threshold) / (tq - tc) as f64).min(1.0);
                (idx as u32, (sr * pen + sc) * p.confidence)
            })
            .collect();
        if !scored.is_empty() {
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            return Some(dedupe_top_k(regions, patterns, scored, config.k));
        }
        i += 1;
        if tq - i * t_eps <= tc || (hi - lo) >= period {
            return None;
        }
    }
}

fn dedupe_top_k(
    regions: &RegionSet,
    patterns: &[TrajectoryPattern],
    scored: Vec<(u32, f64)>,
    k: usize,
) -> Vec<RankedAnswer> {
    let mut seen = Vec::new();
    let mut out = Vec::new();
    for (pattern, score) in scored {
        let consequence = patterns[pattern as usize].consequence;
        if seen.contains(&consequence) {
            continue;
        }
        seen.push(consequence);
        out.push(RankedAnswer {
            location: regions.get(consequence).centroid,
            score,
            pattern: Some(pattern),
            uncertainty: Uncertainty {
                region: regions.get(consequence).bbox,
                mass: 0.0,
            },
        });
        if out.len() == k {
            break;
        }
    }
    // Independent restatement of the mass rule: each answer's share
    // of the emitted scores, uniform when all scores are zero.
    let total: f64 = out.iter().map(|a| a.score).sum();
    let n = out.len();
    for a in &mut out {
        a.uncertainty.mass = if total > 0.0 {
            a.score / total
        } else {
            1.0 / n as f64
        };
    }
    out
}

/// Random worlds: up to 3 regions per offset, random valid patterns.
fn arb_world() -> Gen<(RegionSet, Vec<TrajectoryPattern>)> {
    tuple((int(3u32..10), int(0usize..60), int(0u64..10_000))).map(|(period, n_patterns, seed)| {
        use hpm_geo::BoundingBox;
        use hpm_patterns::FrequentRegion;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut regions = Vec::new();
        for t in 0..period {
            let locals = 1 + (next() % 3) as u32;
            for j in 0..locals {
                let c = Point::new(t as f64 * 100.0, f64::from(j) * 37.0);
                regions.push(FrequentRegion {
                    id: RegionId(regions.len() as u32),
                    offset: t,
                    local_index: j,
                    centroid: c,
                    bbox: BoundingBox {
                        min: c - Point::new(4.0, 4.0),
                        max: c + Point::new(4.0, 4.0),
                    },
                    support: 3 + (next() % 20) as u32,
                });
            }
        }
        let set = RegionSet::new(regions, period);
        let patterns: Vec<TrajectoryPattern> = (0..n_patterns)
            .map(|_| {
                // Premise at offsets a (< b) with consequence at b.
                let a = (next() % u64::from(period - 1)) as u32;
                let b = a + 1 + (next() % u64::from(period - a - 1).max(1)) as u32;
                let pick = |t: u32, r: u64| {
                    let ids = set.at_offset(t);
                    ids[(r % ids.len() as u64) as usize]
                };
                let two = a + 1 < b && next() % 2 == 0;
                let mut premise = vec![pick(a, next())];
                if two {
                    let mid = a + 1 + (next() % u64::from(b - a - 1)) as u32;
                    if mid > a && mid < b {
                        premise.push(pick(mid, next()));
                    }
                }
                TrajectoryPattern {
                    premise,
                    consequence: pick(b, next()),
                    confidence: 0.05 + (next() % 95) as f64 / 100.0,
                    support: 1 + (next() % 20) as u32,
                }
            })
            .collect();
        (set, patterns)
    })
}

fn answers_equal(a: &[RankedAnswer], b: &[RankedAnswer]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.pattern == y.pattern
                && (x.score - y.score).abs() < 1e-12
                && x.location == y.location
                && x.uncertainty.region == y.uncertainty.region
                && (x.uncertainty.mass - y.uncertainty.mass).abs() < 1e-12
        })
}

props! {
    #[cases(128)]
    /// The production predictor and the index-free reference agree on
    /// every query, for both processing paths and the fallback switch.
    fn predictor_matches_reference(
        world in arb_world(),
        k in int(1usize..4),
        distant in int(1u32..8),
        spot in int(0u32..32),
        length in int(1u64..12),
        t_eps in int(1u32..4),
    ) {
        let (set, patterns) = world;
        let period = set.period();
        let config = HpmConfig {
            k,
            distant_threshold: distant,
            time_relaxation: t_eps,
            match_margin: 1.0,
            rmf_retrospect: 2,
            tpt_fanout: 4,
            ..HpmConfig::default()
        };
        let predictor =
            HybridPredictor::from_parts(set.clone(), patterns.clone(), config);
        let table = KeyTable::build(&set, &patterns);

        // The query stands at a random region's centre.
        let all_ids: Vec<RegionId> = set.all().iter().map(|r| r.id).collect();
        let at = all_ids[spot as usize % all_ids.len()];
        let offset = set.get(at).offset;
        let p0 = set.get(at).centroid;
        let recent = [p0 - Point::new(1.0, 0.0), p0];
        let current_time = u64::from(10 * period + offset);
        let query = PredictiveQuery {
            recent: &recent,
            current_time,
            query_time: current_time + length,
        };
        let got = predictor.predict(&query);

        let recent_ids = predictor.recent_regions(&recent, current_time);
        let expected = if (length as u32) < distant {
            reference_fqp(
                &set, &patterns, &table, &recent_ids,
                ((current_time + length) % u64::from(period)) as u32,
                &config,
            )
        } else {
            reference_bqp(
                &set, &patterns, &table, &recent_ids,
                current_time as i64,
                (current_time + length) as i64,
                &config,
            )
        };
        match expected {
            Some(answers) => {
                require_ne!(got.source, PredictionSource::MotionFunction);
                require!(
                    answers_equal(&got.answers, &answers),
                    "got {:?}\nexpected {:?}",
                    got.answers,
                    answers
                );
            }
            None => {
                require_eq!(got.source, PredictionSource::MotionFunction);
            }
        }
    }

    #[cases(128)]
    /// BQP's all-ones search premise never admits a pattern the
    /// reference interval filter would exclude (search-key soundness).
    fn bqp_interval_soundness(
        world in arb_world(),
        length in int(1u64..20),
        t_eps in int(1u32..4),
    ) {
        let (set, patterns) = world;
        assume!(!patterns.is_empty());
        let period = set.period();
        let config = HpmConfig {
            k: 32,
            distant_threshold: 1, // everything distant
            time_relaxation: t_eps,
            match_margin: 1.0,
            rmf_retrospect: 2,
            tpt_fanout: 4,
            ..HpmConfig::default()
        };
        let predictor = HybridPredictor::from_parts(set.clone(), patterns.clone(), config);
        let p0 = set.get(RegionId(0)).centroid;
        let recent = [p0];
        let ct = u64::from(7 * period);
        let pred = predictor.predict(&PredictiveQuery {
            recent: &recent,
            current_time: ct,
            query_time: ct + length,
        });
        if pred.source == PredictionSource::BackwardPatterns {
            // Every answer's consequence must land within SOME widening
            // interval before the loop gave up — i.e. within the period
            // circle distance reachable from tq before lo hits tc.
            for a in &pred.answers {
                let p = &patterns[a.pattern.unwrap() as usize];
                require!(p.consequence_offset(&set) < period);
            }
        }
    }
}
