//! The incremental-training contract: a predictor maintained through
//! `TrainerState` + `apply_update` answers exactly like
//! `HybridPredictor::build` over the full history — after **every**
//! retrain point, drift fallbacks included.

use hpm_check::prelude::*;
use hpm_core::{HpmConfig, HybridPredictor, PredictiveQuery, TrainerState, WeightFunction};
use hpm_geo::Point;
use hpm_patterns::{DiscoveryParams, MiningParams};
use hpm_trajectory::{Timestamp, Trajectory};

fn config() -> HpmConfig {
    HpmConfig {
        k: 2,
        distant_threshold: 2,
        time_relaxation: 1,
        weight_fn: WeightFunction::Linear,
        match_margin: 2.0,
        rmf_retrospect: 2,
        tpt_fanout: 8,
    }
}

/// One incremental retrain pass with the drift fallback the object
/// store takes: on structure drift, rebuild in full and re-seed.
fn retrain(
    trainer: &mut TrainerState,
    predictor: &HybridPredictor,
    traj: &Trajectory,
    fallbacks: &mut usize,
) -> HybridPredictor {
    let disc = *trainer.discovery();
    let mp = *trainer.mining();
    let delta = trainer.stage_decompose(traj);
    match trainer.stage_cluster(&delta) {
        Ok(visits) => {
            let patterns = trainer.stage_mine(&visits);
            predictor.apply_update(trainer.regions(), patterns).0
        }
        Err(_) => {
            *fallbacks += 1;
            trainer.seed(traj);
            HybridPredictor::build(traj, &disc, &mp, *predictor.config())
        }
    }
}

props! {
    // Report streams are commuter days with `wild`-probability outlier
    // days (new hotspots -> promotion/new-cluster drift). After every
    // daily retrain the incrementally maintained predictor must match
    // a batch build over the full prefix: same regions, same patterns
    // (ids included), same ranked answers on sampled near (FQP) and
    // distant (BQP) queries, and the same motion fallbacks.
    #[cases(96)]
    fn incremental_retrain_equals_full_rebuild(
        period in int(3u32..6),
        days in int(6usize..16),
        warm in int(2usize..5),
        branches in int(1u64..3),
        wild in choice(vec![0u64, 150, 400]),
        seed in int(0u64..100_000),
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // The full report stream, day by day.
        let mut pts = Vec::with_capacity(days * period as usize);
        for _ in 0..days {
            if next() % 1000 < wild {
                // A wild day: the whole day at a remote hotspot.
                let bx = 500.0 + (next() % 3) as f64 * 150.0;
                let by = 500.0 + (next() % 3) as f64 * 150.0;
                for t in 0..period {
                    pts.push(Point::new(bx + t as f64 * 0.2, by));
                }
            } else {
                let branch = (next() % branches) as f64;
                for t in 0..period {
                    let jitter = (next() % 100) as f64 / 100.0;
                    pts.push(Point::new(t as f64 * 50.0 + jitter, branch * 40.0 + jitter));
                }
            }
        }
        let prefix =
            |d: usize| Trajectory::from_points(pts[..d * period as usize].to_vec());

        let disc = DiscoveryParams { period, eps: 3.0, min_pts: 3 };
        let mp = MiningParams {
            min_support: 2,
            min_confidence: 0.2,
            max_premise_len: 2,
            max_premise_gap: 2,
            max_span: 3,
        };
        let warm_days = warm.min(days - 1);
        let warm_traj = prefix(warm_days);
        let mut trainer = TrainerState::new(disc, mp);
        trainer.seed(&warm_traj);
        let mut predictor = HybridPredictor::build(&warm_traj, &disc, &mp, config());
        let mut fallbacks = 0usize;

        for d in warm_days + 1..=days {
            let traj = prefix(d);
            predictor = retrain(&mut trainer, &predictor, &traj, &mut fallbacks);
            let batch = HybridPredictor::build(&traj, &disc, &mp, config());
            require_eq!(predictor.regions().all(), batch.regions().all());
            require_eq!(predictor.patterns(), batch.patterns());

            let p = traj.points();
            let now = (p.len() - 1) as Timestamp;
            let recents: [&[Point]; 3] =
                [&p[p.len() - 1..], &p[p.len() - 2..], &[Point::new(900.0, 900.0)]];
            for recent in recents {
                for dt in [1, 2, period as Timestamp] {
                    let q = PredictiveQuery {
                        recent,
                        current_time: now,
                        query_time: now + dt,
                    };
                    require_eq!(predictor.predict(&q), batch.predict(&q));
                }
            }
        }
        require_eq!(trainer.consumed(), days * period as usize);
        // Every drift the trainer saw took the fallback path (cluster
        // formation alone drifts — a neighbour crossing MinPts — so
        // even quiet streams exercise it).
        require!(fallbacks as u64 <= trainer.drift_events());
    }
}
