//! Property-based invariants for similarity measures and the hybrid
//! predictor.

use hpm_check::prelude::*;
use hpm_core::{
    consequence_similarity, premise_similarity, HpmConfig, HybridPredictor, PredictiveQuery,
    WeightFunction,
};
use hpm_geo::{BoundingBox, Point};
use hpm_patterns::{FrequentRegion, RegionId, RegionSet, TrajectoryPattern};
use hpm_tpt::Bitmap;

const LEN: usize = 40;

fn arb_bits() -> Gen<Bitmap> {
    vec(int(0usize..LEN), 0..8).map(|ones| Bitmap::from_indices(LEN, &ones))
}

fn arb_wf() -> Gen<WeightFunction> {
    choice(vec![
        WeightFunction::Linear,
        WeightFunction::Quadratic,
        WeightFunction::Exponential,
        WeightFunction::Factorial,
    ])
}

/// A random but always-valid pattern world over `period` offsets with
/// one region per offset, plus patterns of 1–2 premise regions.
fn arb_world() -> Gen<(RegionSet, Vec<TrajectoryPattern>)> {
    tuple((int(4u32..12), int(1usize..30), int(0u64..500))).map(|(period, n_patterns, seed)| {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let regions: Vec<FrequentRegion> = (0..period)
            .map(|t| {
                let c = Point::new(t as f64 * 100.0, (next() % 100) as f64);
                FrequentRegion {
                    id: RegionId(t),
                    offset: t,
                    local_index: 0,
                    centroid: c,
                    bbox: BoundingBox {
                        min: c - Point::new(5.0, 5.0),
                        max: c + Point::new(5.0, 5.0),
                    },
                    support: 5 + (next() % 20) as u32,
                }
            })
            .collect();
        let set = RegionSet::new(regions, period);
        let patterns: Vec<TrajectoryPattern> = (0..n_patterns)
            .map(|_| {
                let a = (next() % (period as u64 - 1)) as u32;
                let two = a + 2 < period && next() % 2 == 0;
                let (premise, cons) = if two {
                    (vec![RegionId(a), RegionId(a + 1)], RegionId(a + 2))
                } else {
                    (vec![RegionId(a)], RegionId(a + 1))
                };
                TrajectoryPattern {
                    premise,
                    consequence: cons,
                    confidence: 0.05 + (next() % 95) as f64 / 100.0,
                    support: 1 + (next() % 30) as u32,
                }
            })
            .collect();
        (set, patterns)
    })
}

props! {
    /// Eq. 1 bounds and identities, for every weight function.
    fn premise_similarity_bounds(rk in arb_bits(), rkq in arb_bits(), wf in arb_wf()) {
        let s = premise_similarity(&rk, &rkq, wf);
        require!((0.0..=1.0 + 1e-12).contains(&s), "S_r = {s}");
        if !rk.is_zero() {
            require!((premise_similarity(&rk, &rk, wf) - 1.0).abs() < 1e-9);
        }
        require_eq!(premise_similarity(&rk, &Bitmap::zeros(LEN), wf), 0.0);
        // Full containment of rk in rkq maximises similarity.
        if rkq.contains(&rk) && !rk.is_zero() {
            require!((s - 1.0).abs() < 1e-9);
        }
    }

    /// Adding a matched bit to the query never decreases similarity.
    fn premise_similarity_monotone(
        rk in arb_bits(),
        rkq in arb_bits(),
        wf in arb_wf(),
        extra in int(0usize..LEN),
    ) {
        let base = premise_similarity(&rk, &rkq, wf);
        let mut grown = rkq.clone();
        grown.set(extra);
        require!(premise_similarity(&rk, &grown, wf) >= base - 1e-12);
    }

    /// Eq. 3 bounds and symmetry around the query time.
    fn consequence_similarity_shape(
        tq in int(-1000i64..1000),
        dt in int(0i64..50),
        t_eps in int(1u32..8),
    ) {
        let s_plus = consequence_similarity(tq, tq + dt, t_eps);
        let s_minus = consequence_similarity(tq, tq - dt, t_eps);
        require!((s_plus - s_minus).abs() < 1e-12, "not symmetric");
        require!((0.0..=1.0).contains(&s_plus));
        require_eq!(consequence_similarity(tq, tq, t_eps), 1.0);
        // Monotone non-increasing in temporal distance.
        let further = consequence_similarity(tq, tq + dt + 1, t_eps);
        require!(further <= s_plus + 1e-12);
    }

    /// The predictor always answers: at least one finite answer, at
    /// most k, scores descending, pattern ids valid.
    fn predictor_total_and_sane(
        world in arb_world(),
        k in int(1usize..4),
        distant in int(1u32..6),
        recent_spot in int(0u32..12),
        length in int(1u64..10),
    ) {
        let (set, patterns) = world;
        let period = set.period();
        let predictor = HybridPredictor::from_parts(
            set,
            patterns,
            HpmConfig {
                k,
                distant_threshold: distant,
                time_relaxation: 1,
                match_margin: 1.0,
                rmf_retrospect: 2,
                tpt_fanout: 4,
                ..HpmConfig::default()
            },
        );
        let spot = recent_spot % period;
        let p0 = predictor.regions().get(RegionId(spot)).centroid;
        let recent = [p0 - Point::new(1.0, 0.0), p0];
        let current_time = (10 * period + spot) as u64;
        let query = PredictiveQuery {
            recent: &recent,
            current_time,
            query_time: current_time + length,
        };
        let pred = predictor.predict(&query);
        require!(!pred.answers.is_empty());
        require!(pred.answers.len() <= k);
        require!(pred.answers.iter().all(|a| a.location.is_finite()));
        require!(pred.answers.windows(2).all(|w| w[0].score >= w[1].score));
        for a in &pred.answers {
            if let Some(pid) = a.pattern {
                let pattern = &predictor.patterns()[pid as usize];
                // The answer is that pattern's consequence centre.
                require_eq!(
                    a.location,
                    predictor.regions().get(pattern.consequence).centroid
                );
                // FQP answers must sit at the query's time offset.
                if pred.source == hpm_core::PredictionSource::ForwardPatterns {
                    let tq_off = (query.query_time % period as u64) as u32;
                    require_eq!(
                        pattern.consequence_offset(predictor.regions()),
                        tq_off
                    );
                }
            } else {
                require_eq!(pred.source, hpm_core::PredictionSource::MotionFunction);
            }
        }
    }

    /// Distinct consequence regions in the answer list (no duplicate
    /// locations wasting the k budget).
    fn answers_are_distinct_regions(world in arb_world(), spot in int(0u32..12)) {
        let (set, patterns) = world;
        let period = set.period();
        let predictor = HybridPredictor::from_parts(
            set,
            patterns,
            HpmConfig {
                k: 5,
                distant_threshold: 2,
                time_relaxation: 1,
                match_margin: 1.0,
                rmf_retrospect: 2,
                tpt_fanout: 4,
                ..HpmConfig::default()
            },
        );
        let spot = spot % period;
        let p0 = predictor.regions().get(RegionId(spot)).centroid;
        let recent = [p0];
        let ct = (7 * period + spot) as u64;
        let pred = predictor.predict(&PredictiveQuery {
            recent: &recent,
            current_time: ct,
            query_time: ct + 3,
        });
        let mut locs: Vec<_> = pred
            .answers
            .iter()
            .filter(|a| a.pattern.is_some())
            .map(|a| (a.location.x.to_bits(), a.location.y.to_bits()))
            .collect();
        let before = locs.len();
        locs.sort_unstable();
        locs.dedup();
        require_eq!(locs.len(), before, "duplicate answer locations");
    }
}
