//! End-to-end tests driving the `hpm` binary itself.

use std::path::PathBuf;
use std::process::{Command, Output};

fn hpm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hpm"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hpm_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_lists_subcommands() {
    let out = hpm(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in ["generate", "train", "info", "predict", "eval"] {
        assert!(text.contains(cmd), "help misses {cmd}");
    }
}

#[test]
fn unknown_subcommand_fails_cleanly() {
    let out = hpm(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown subcommand"));
}

#[test]
fn unknown_flag_fails_cleanly() {
    let out = hpm(&[
        "generate",
        "--dataset",
        "bike",
        "--output",
        "/dev/null",
        "--bogus",
        "1",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--bogus"));
}

#[test]
fn full_workflow() {
    let dir = tmpdir();
    let csv = dir.join("bike.csv");
    let model = dir.join("bike.hpm");
    let csv_s = csv.to_str().unwrap();
    let model_s = model.to_str().unwrap();

    // generate
    let out = hpm(&[
        "generate",
        "--dataset",
        "bike",
        "--subs",
        "45",
        "--seed",
        "3",
        "--output",
        csv_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("13500 samples"));

    // train
    let out = hpm(&[
        "train", "--input", csv_s, "--period", "300", "--output", model_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("patterns ->"));

    // info (+map)
    let out = hpm(&["info", "--model", model_s, "--top", "3", "--map", "true"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("frequent regions"));
    assert!(text.contains("density map"));
    assert!(text.contains("-->"));

    // predict (mid-period query so patterns can apply)
    let out = hpm(&[
        "predict", "--model", model_s, "--input", csv_s, "--at", "13540", "--k", "2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("predicted via"));

    // eval
    let out = hpm(&[
        "eval",
        "--input",
        csv_s,
        "--period",
        "300",
        "--train-subs",
        "35",
        "--length",
        "40",
        "--queries",
        "20",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("HPM"));
    assert!(text.contains("median"));
    assert!(text.contains("HPM paths"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predict_metrics_json_covers_hot_path() {
    // Own subdirectory: sibling tests remove the shared tmpdir.
    let dir = tmpdir().join("metrics_json");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("bike.csv");
    let model = dir.join("bike.hpm");
    let csv_s = csv.to_str().unwrap();
    let model_s = model.to_str().unwrap();

    let out = hpm(&[
        "generate",
        "--dataset",
        "bike",
        "--subs",
        "45",
        "--seed",
        "3",
        "--output",
        csv_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = hpm(&[
        "train", "--input", csv_s, "--period", "300", "--output", model_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // --metrics-json - appends the snapshot JSON to stdout; --metrics
    // true adds the text table.
    let out = hpm(&[
        "predict",
        "--model",
        model_s,
        "--input",
        csv_s,
        "--at",
        "13540",
        "--metrics",
        "true",
        "--metrics-json",
        "-",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("predicted via"));
    assert!(text.contains("-- metrics --"));
    let json_line = text
        .lines()
        .find(|l| l.starts_with("{\"counters\""))
        .expect("snapshot JSON on stdout");
    let doc = hpm_obs::json::parse(json_line).expect("valid snapshot JSON");
    let counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(hpm_obs::json::Json::as_f64)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    // One query was answered and dispatched to exactly one arm.
    assert_eq!(counter("core.predict.calls"), 1.0);
    assert_eq!(
        counter("core.predict.fqp_dispatch") + counter("core.predict.bqp_dispatch"),
        1.0
    );
    // The model was decoded and, if a pattern path ran, the TPT was
    // searched; either way the names exist because the CLI registers
    // the full catalogue.
    assert!(counter("store.model.bytes_read") > 0.0);
    let hists = doc
        .get("histograms")
        .and_then(hpm_obs::json::Json::as_array)
        .expect("histograms array");
    let hist_count = |name: &str| {
        hists
            .iter()
            .find(|h| h.get("name").and_then(hpm_obs::json::Json::as_str) == Some(name))
            .and_then(|h| h.get("count"))
            .and_then(hpm_obs::json::Json::as_f64)
            .unwrap_or_else(|| panic!("histogram {name} missing"))
    };
    // Per-stage latency histograms fired along the executed path.
    assert_eq!(hist_count("core.predict"), 1.0);
    assert!(hist_count("store.model.decode") >= 1.0);

    // File output matches the documented shape too.
    let json_file = dir.join("metrics.json");
    let out = hpm(&[
        "predict",
        "--model",
        model_s,
        "--input",
        csv_s,
        "--at",
        "13540",
        "--metrics-json",
        json_file.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let doc = hpm_obs::json::parse(&std::fs::read_to_string(&json_file).unwrap())
        .expect("valid snapshot JSON file");
    assert!(doc.get("counters").is_some() && doc.get("histograms").is_some());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predict_batch_mode_parallel_matches_sequential() {
    // Own subdirectory: sibling tests remove the shared tmpdir.
    let dir = tmpdir().join("batch_predict");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("bike.csv");
    let model = dir.join("bike.hpm");
    let csv_s = csv.to_str().unwrap();
    let model_s = model.to_str().unwrap();

    let out = hpm(&[
        "generate",
        "--dataset",
        "bike",
        "--subs",
        "45",
        "--seed",
        "3",
        "--output",
        csv_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = hpm(&[
        "train", "--input", csv_s, "--period", "300", "--output", model_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // Query-time file: comments and blank lines tolerated, answers in
    // file order.
    let batch = dir.join("times.txt");
    std::fs::write(
        &batch,
        "# predictive query times\n13540\n\n13600\n13700\n13800\n",
    )
    .unwrap();
    let batch_s = batch.to_str().unwrap();

    let run = |threads: &str| {
        let out = hpm(&[
            "predict",
            "--model",
            model_s,
            "--input",
            csv_s,
            "--batch",
            batch_s,
            "--threads",
            threads,
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        stdout(&out)
    };
    let seq = run("1");
    assert!(seq.contains("4 batch queries on 1 threads"), "{seq}");
    for t in ["t=13540:", "t=13600:", "t=13700:", "t=13800:"] {
        assert!(seq.contains(t), "{seq}");
    }
    // Input order is preserved.
    assert!(seq.find("t=13540:").unwrap() < seq.find("t=13800:").unwrap());

    // 4 threads: identical answers, only the reported width differs.
    let par = run("4");
    assert_eq!(
        seq.replace("on 1 threads", "on N threads"),
        par.replace("on 4 threads", "on N threads")
    );

    // --at and --batch together is an error.
    let out = hpm(&[
        "predict", "--model", model_s, "--input", csv_s, "--batch", batch_s, "--at", "13540",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("mutually exclusive"));

    // A past query time anywhere in the file is rejected.
    std::fs::write(&batch, "13540\n5\n").unwrap();
    let out = hpm(&[
        "predict", "--model", model_s, "--input", csv_s, "--batch", batch_s,
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("not after"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predict_rejects_past_query_time() {
    let dir = tmpdir();
    let csv = dir.join("tiny.csv");
    std::fs::write(&csv, "t,x,y\n0,1,1\n1,2,2\n2,3,3\n").unwrap();
    let model = dir.join("tiny.hpm");
    let out = hpm(&[
        "train",
        "--input",
        csv.to_str().unwrap(),
        "--period",
        "3",
        "--output",
        model.to_str().unwrap(),
        "--min-pts",
        "1",
        "--min-support",
        "1",
        "--max-gap",
        "1",
        "--max-span",
        "2",
        "--eps",
        "5",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = hpm(&[
        "predict",
        "--model",
        model.to_str().unwrap(),
        "--input",
        csv.to_str().unwrap(),
        "--at",
        "1",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("not after"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_reports_gap_errors_without_fill() {
    let dir = tmpdir();
    let csv = dir.join("gappy.csv");
    std::fs::write(&csv, "t,x,y\n0,1,1\n2,2,2\n").unwrap();
    let out = hpm(&[
        "train",
        "--input",
        csv.to_str().unwrap(),
        "--period",
        "2",
        "--output",
        dir.join("x.hpm").to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("fill-gaps"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn staypoints_and_simplify() {
    let dir = tmpdir();
    let csv = dir.join("sp.csv");
    // 6 samples at home, a 4-step commute, 6 samples at work.
    let mut rows = String::from("t,x,y\n");
    for t in 0..6 {
        rows.push_str(&format!("{t},0,0\n"));
    }
    for (i, t) in (6..10).enumerate() {
        rows.push_str(&format!("{t},{},0\n", (i + 1) * 20));
    }
    for t in 10..16 {
        rows.push_str(&format!("{t},100,0\n"));
    }
    std::fs::write(&csv, rows).unwrap();

    let out = hpm(&[
        "staypoints",
        "--input",
        csv.to_str().unwrap(),
        "--radius",
        "5",
        "--min-duration",
        "4",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2 stay points"), "{text}");

    let simplified = dir.join("sp_simple.csv");
    let out = hpm(&[
        "simplify",
        "--input",
        csv.to_str().unwrap(),
        "--epsilon",
        "1",
        "--output",
        simplified.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let content = std::fs::read_to_string(&simplified).unwrap();
    let lines: Vec<&str> = content.trim().lines().collect();
    // Collinear commute collapses: header + a handful of vertices.
    assert!(lines.len() <= 6, "{content}");
    assert!(lines[1].starts_with("0,"));
    assert!(lines.last().unwrap().starts_with("15,"));
    std::fs::remove_dir_all(&dir).ok();
}
