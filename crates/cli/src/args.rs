//! A small `--flag value` argument parser (no CLI crate is on the
//! offline dependency list).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone)]
pub struct Args {
    command: String,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses `argv[1..]`: the first token is the subcommand, the rest
    /// must be `--key value` pairs.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut it = argv.iter();
        let command = it.next().cloned().ok_or("missing subcommand")?;
        let mut flags = HashMap::new();
        while let Some(token) = it.next() {
            let key = token
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got `{token}`"))?;
            if key.is_empty() {
                return Err("empty flag name".into());
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            if flags.insert(key.to_string(), value.clone()).is_some() {
                return Err(format!("flag --{key} given twice"));
            }
        }
        Ok(Args { command, flags })
    }

    /// The subcommand.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional string flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse `{raw}`")),
        }
    }

    /// A required parsed flag.
    pub fn get<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let raw = self.required(key)?;
        raw.parse()
            .map_err(|_| format!("flag --{key}: cannot parse `{raw}`"))
    }

    /// Rejects unknown flags (typo protection).
    pub fn expect_only(&self, known: &[&str]) -> Result<(), String> {
        for key in self.flags.keys() {
            if !known.contains(&key.as_str()) {
                return Err(format!(
                    "unknown flag --{key} for `{}` (known: {})",
                    self.command,
                    known.join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(&argv("train --input x.csv --period 300")).unwrap();
        assert_eq!(a.command(), "train");
        assert_eq!(a.required("input").unwrap(), "x.csv");
        assert_eq!(a.get::<u32>("period").unwrap(), 300);
        assert_eq!(a.get_or("eps", 30.0).unwrap(), 30.0);
    }

    #[test]
    fn missing_subcommand() {
        assert!(Args::parse(&[]).is_err());
    }

    #[test]
    fn flag_without_value() {
        assert!(Args::parse(&argv("x --input")).is_err());
    }

    #[test]
    fn non_flag_token_rejected() {
        assert!(Args::parse(&argv("x input.csv")).is_err());
    }

    #[test]
    fn duplicate_flag_rejected() {
        assert!(Args::parse(&argv("x --a 1 --a 2")).is_err());
    }

    #[test]
    fn unknown_flag_detected() {
        let a = Args::parse(&argv("x --good 1 --bad 2")).unwrap();
        assert!(a.expect_only(&["good"]).unwrap_err().contains("--bad"));
        assert!(a.expect_only(&["good", "bad"]).is_ok());
    }

    #[test]
    fn parse_errors_name_the_flag() {
        let a = Args::parse(&argv("x --n abc")).unwrap();
        assert!(a.get::<u32>("n").unwrap_err().contains("--n"));
        assert!(a.get::<u32>("missing").unwrap_err().contains("--missing"));
    }
}
