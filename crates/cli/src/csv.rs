//! Minimal trajectory CSV I/O: `t,x,y` rows, one sample per
//! consecutive timestamp.

use hpm_geo::Point;
use hpm_trajectory::{Timestamp, Trajectory};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Writes a trajectory as `t,x,y` rows with a header.
pub fn write_trajectory(path: impl AsRef<Path>, traj: &Trajectory) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "t,x,y")?;
    for (i, p) in traj.points().iter().enumerate() {
        writeln!(w, "{},{},{}", traj.start() + i as Timestamp, p.x, p.y)?;
    }
    w.flush()
}

/// Reads raw `(t, x, y)` samples from a CSV (header optional), with no
/// ordering or contiguity requirements — feed the result to
/// `hpm_trajectory::from_sparse_samples` to obtain a gap-free
/// trajectory.
pub fn read_samples(path: impl AsRef<Path>) -> Result<Vec<(Timestamp, Point)>, String> {
    let file =
        std::fs::File::open(&path).map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
    let reader = std::io::BufReader::new(file);
    let mut samples: Vec<(Timestamp, Point)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if lineno == 0 && trimmed.starts_with(|c: char| c.is_alphabetic()) {
            continue; // header
        }
        let mut cells = trimmed.split(',');
        let err = |what: &str| format!("line {}: {what}: `{trimmed}`", lineno + 1);
        let t: Timestamp = cells
            .next()
            .ok_or_else(|| err("missing t"))?
            .trim()
            .parse()
            .map_err(|_| err("bad t"))?;
        let x: f64 = cells
            .next()
            .ok_or_else(|| err("missing x"))?
            .trim()
            .parse()
            .map_err(|_| err("bad x"))?;
        let y: f64 = cells
            .next()
            .ok_or_else(|| err("missing y"))?
            .trim()
            .parse()
            .map_err(|_| err("bad y"))?;
        if cells.next().is_some() {
            return Err(err("too many columns"));
        }
        if !x.is_finite() || !y.is_finite() {
            return Err(err("non-finite coordinate"));
        }
        samples.push((t, Point::new(x, y)));
    }
    if samples.is_empty() {
        return Err("no samples in file".into());
    }
    Ok(samples)
}

/// Reads a `t,x,y` CSV (header optional). Timestamps must be
/// consecutive; the first row sets the start time. (Use
/// [`read_samples`] + `from_sparse_samples` for feeds with gaps.)
pub fn read_trajectory(path: impl AsRef<Path>) -> Result<Trajectory, String> {
    let samples = read_samples(path)?;
    let start = samples[0].0;
    let mut points = Vec::with_capacity(samples.len());
    for (i, (t, p)) in samples.into_iter().enumerate() {
        let expected = start + i as Timestamp;
        if t != expected {
            return Err(format!(
                "non-consecutive timestamp {t} (expected {expected}); \
                 re-run with --fill-gaps true to interpolate"
            ));
        }
        points.push(p);
    }
    Ok(Trajectory::new(start, points))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("hpm_cli_csv_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip() {
        let traj = Trajectory::new(
            100,
            vec![
                Point::new(1.5, -2.0),
                Point::new(3.0, 4.0),
                Point::new(0.0, 0.25),
            ],
        );
        let path = tmp("roundtrip.csv");
        write_trajectory(&path, &traj).unwrap();
        let back = read_trajectory(&path).unwrap();
        assert_eq!(back, traj);
    }

    #[test]
    fn header_optional_and_whitespace_tolerated() {
        let path = tmp("noheader.csv");
        std::fs::write(&path, "0, 1.0, 2.0\n1, 3.0, 4.0\n\n").unwrap();
        let t = read_trajectory(&path).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.at(1), Some(Point::new(3.0, 4.0)));
    }

    #[test]
    fn gaps_rejected() {
        let path = tmp("gap.csv");
        std::fs::write(&path, "t,x,y\n0,1,1\n2,2,2\n").unwrap();
        assert!(read_trajectory(&path)
            .unwrap_err()
            .contains("non-consecutive"));
    }

    #[test]
    fn malformed_rows_rejected() {
        for (name, content, needle) in [
            ("badx.csv", "0,abc,1\n", "bad x"),
            ("short.csv", "0,1\n", "missing y"),
            ("long.csv", "0,1,2,3\n", "too many"),
            ("nan.csv", "0,NaN,2\n", "non-finite"),
            ("empty.csv", "t,x,y\n", "no samples"),
        ] {
            let path = tmp(name);
            std::fs::write(&path, content).unwrap();
            let err = read_trajectory(&path).unwrap_err();
            assert!(err.contains(needle), "{name}: {err}");
        }
    }
}
