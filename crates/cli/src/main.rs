//! `hpm` — command-line front end for the Hybrid Prediction Model.
//!
//! ```text
//! hpm generate --dataset bike --subs 80 --seed 42 --output traj.csv
//! hpm train    --input traj.csv --period 300 --output model.hpm
//! hpm info     --model model.hpm
//! hpm predict  --model model.hpm --input traj.csv --at 18050 [--k 3]
//! hpm predict  --model model.hpm --input traj.csv --batch times.txt --threads 4
//! hpm eval     --input traj.csv --period 300 --train-subs 60 --length 50
//! ```
//!
//! Trajectories are `t,x,y` CSV files (consecutive timestamps); models
//! are `hpm-store` binary blobs.

mod args;
mod csv;

use args::Args;
use hpm_core::eval::{
    error_stats, make_workload, source_breakdown, training_slice, WorkloadParams,
};
use hpm_core::{HpmConfig, HybridPredictor, PredictiveQuery};
use hpm_datagen::{paper_dataset, PaperDataset};
use hpm_motion::{LinearMotion, MotionModel, Rmf};
use hpm_patterns::{discover, mine, DiscoveryParams, MiningParams};
use hpm_store::{load_model, save_model};
use hpm_trajectory::{despike, from_sparse_samples, Trajectory};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print!("{HELP}");
        return;
    }
    let result = Args::parse(&argv).and_then(|args| match args.command() {
        "generate" => cmd_generate(&args),
        "train" => cmd_train(&args),
        "info" => cmd_info(&args),
        "predict" => cmd_predict(&args),
        "ingest" => cmd_ingest(&args),
        "serve" => cmd_serve(&args),
        "stats" => cmd_stats(&args),
        "eval" => cmd_eval(&args),
        "staypoints" => cmd_staypoints(&args),
        "simplify" => cmd_simplify(&args),
        other => Err(format!("unknown subcommand `{other}`; try `hpm help`")),
    });
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

const HELP: &str = "\
hpm - Hybrid Prediction Model for moving objects (ICDE 2008)

USAGE: hpm <subcommand> [--flag value]...

SUBCOMMANDS
  generate  synthesize a periodic trajectory CSV
            --dataset bike|cow|car|airplane|noisy-sensor  --output FILE
            [--subs 80] [--seed 42] [--gps-noise SIGMA]
            (--gps-noise adds Gaussian sensor jitter in quadrature)
  train     discover frequent regions, mine patterns, save the model
            --input traj.csv  --period N  --output model.hpm
            [--eps 30] [--min-pts 4] [--min-conf 0.3]
            [--min-support 4] [--max-premise 2] [--max-gap 8] [--max-span 64]
            [--fill-gaps true] [--despike MAX_STEP]
  info      summarise a saved model
            --model model.hpm  [--top 10] [--map true]
  predict   answer predictive queries from a model + recent movements
            --model model.hpm  --input traj.csv  (--at T | --batch FILE)
            [--threads N]  (batch mode: one query time per line,
            `#` comments allowed; N=0 sizes from HPM_THREADS/cores)
            [--recent 20] [--k 1] [--distant 60] [--teps 2] [--margin 30]
            [--fill-gaps true] [--despike MAX_STEP] [--prob true]
            [--metrics true] [--metrics-json FILE|-]  (FILE `-` = stdout)
            (--prob prints each answer's uncertainty region + mass)
  ingest    stream a trajectory CSV into a durable store directory
            (per-shard WAL + snapshots; re-run after a crash to resume)
            --input traj.csv  --data-dir DIR  --period N
            [--eps 2] [--min-pts 3] [--min-conf 0.3] [--min-support 4]
            [--max-premise 2] [--max-gap 8] [--max-span 64]
            [--min-train 3] [--retrain-every 1] [--k 1] [--margin 30]
            [--group-commit 1] [--fsync always|never] [--snapshot-every 0]
            [--resume true] [--predict-at T1,T2,...]
  serve     expose a store over TCP (hpm-server wire protocol);
            prints `LISTENING ADDR` then blocks until a client sends
            the shutdown verb
            --addr HOST:PORT  --period N  [--data-dir DIR]
            [--eps 2] [--min-pts 3] [--min-conf 0.3] [--min-support 4]
            [--max-premise 2] [--max-gap 8] [--max-span 64]
            [--min-train 3] [--retrain-every 1] [--k 1] [--margin 30]
            [--recent 2] [--shards 4] [--threads 0]
            [--group-commit 1] [--fsync always|never] [--snapshot-every 0]
            [--max-frame BYTES] [--queue-depth 64]
  stats     query a running server for one object's stats (samples,
            training watermarks, model size, approximate resident
            bytes) and the fleet-wide store memory gauges
            --addr HOST:PORT  --id N  [--mem true] [--shutdown false]
  eval      compare HPM / RMF / linear accuracy on held-out data
            --input traj.csv  --period N  --train-subs N  --length N
            [--queries 50] [--recent 20] [--extent 10000]
            [--eps 30] [--min-pts 4] [--min-conf 0.3]
            [--fill-gaps true] [--despike MAX_STEP]
            [--calibration true] [--tolerance GAP]
            (--calibration reports claimed mass vs empirical hit rate;
            --tolerance exits non-zero when |gap| exceeds it)
  staypoints  detect dwell intervals (stays within RADIUS for >= DUR)
            --input traj.csv  --radius R  --min-duration DUR
            [--fill-gaps true] [--despike MAX_STEP]
  simplify  Ramer-Douglas-Peucker compaction of a trajectory CSV
            --input traj.csv  --epsilon E  --output out.csv
            [--fill-gaps true] [--despike MAX_STEP]

  Input CSVs are `t,x,y` rows. --fill-gaps interpolates missing
  timestamps; --despike repairs isolated jumps larger than MAX_STEP.
";

fn cmd_generate(args: &Args) -> Result<(), String> {
    args.expect_only(&["dataset", "output", "subs", "seed", "gps-noise"])?;
    let output = args.required("output")?;
    let subs: usize = args.get_or("subs", 80)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let generator = match args.required("dataset")? {
        "bike" => paper_dataset(PaperDataset::Bike, seed),
        "cow" => paper_dataset(PaperDataset::Cow, seed),
        "car" => paper_dataset(PaperDataset::Car, seed),
        "airplane" => paper_dataset(PaperDataset::Airplane, seed),
        "noisy-sensor" => hpm_datagen::noisy_sensor(seed),
        other => return Err(format!("unknown dataset `{other}`")),
    };
    let gps_noise: f64 = args.get_or("gps-noise", 0.0)?;
    if !(gps_noise.is_finite() && gps_noise >= 0.0) {
        return Err(format!("--gps-noise must be non-negative, got {gps_noise}"));
    }
    let traj = generator.with_gps_noise(gps_noise).generate_subs(subs);
    csv::write_trajectory(output, &traj).map_err(|e| e.to_string())?;
    println!(
        "wrote {} samples ({subs} sub-trajectories of period {}) to {output}",
        traj.len(),
        hpm_datagen::PERIOD
    );
    Ok(())
}

/// Loads an input trajectory honouring `--fill-gaps` / `--despike`.
fn load_input(args: &Args) -> Result<Trajectory, String> {
    let path = args.required("input")?;
    let fill: bool = args.get_or("fill-gaps", false)?;
    let mut traj = if fill {
        let samples = csv::read_samples(path)?;
        let (traj, filled) = from_sparse_samples(samples).map_err(|e| e.to_string())?;
        if filled > 0 {
            eprintln!("note: interpolated {filled} missing samples");
        }
        traj
    } else {
        csv::read_trajectory(path)?
    };
    if let Some(raw) = args.optional("despike") {
        let max_step: f64 = raw
            .parse()
            .map_err(|_| format!("--despike: cannot parse `{raw}`"))?;
        let (fixed, n) = despike(&traj, max_step);
        if n > 0 {
            eprintln!("note: repaired {n} spike samples");
        }
        traj = fixed;
    }
    Ok(traj)
}

fn mining_from(args: &Args) -> Result<MiningParams, String> {
    Ok(MiningParams {
        min_support: args.get_or("min-support", 4)?,
        min_confidence: args.get_or("min-conf", 0.3)?,
        max_premise_len: args.get_or("max-premise", 2)?,
        max_premise_gap: args.get_or("max-gap", 8)?,
        max_span: args.get_or("max-span", 64)?,
    })
}

fn cmd_train(args: &Args) -> Result<(), String> {
    args.expect_only(&[
        "input",
        "period",
        "output",
        "eps",
        "min-pts",
        "min-conf",
        "min-support",
        "max-premise",
        "max-gap",
        "max-span",
        "fill-gaps",
        "despike",
    ])?;
    let traj = load_input(args)?;
    let discovery = DiscoveryParams {
        period: args.get("period")?,
        eps: args.get_or("eps", 30.0)?,
        min_pts: args.get_or("min-pts", 4)?,
    };
    let mining = mining_from(args)?;
    let started = std::time::Instant::now();
    let out = discover(&traj, &discovery);
    let patterns = mine(&out.regions, &out.visits, &mining);
    let output = args.required("output")?;
    save_model(output, &out.regions, &patterns).map_err(|e| e.to_string())?;
    println!(
        "trained in {:.1}s: {} frequent regions, {} patterns -> {output}",
        started.elapsed().as_secs_f64(),
        out.regions.len(),
        patterns.len()
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    args.expect_only(&["model", "top", "map"])?;
    let model = load_model(args.required("model")?)
        .map_err(|e| e.to_string())?
        .map_err(|e| e.to_string())?;
    let top: usize = args.get_or("top", 10)?;
    println!(
        "period {} | {} frequent regions | {} patterns",
        model.regions.period(),
        model.regions.len(),
        model.patterns.len()
    );
    if args.get_or("map", false)? {
        print!("{}", region_map(&model.regions, 64, 24));
    }
    let mut by_conf: Vec<_> = model.patterns.iter().collect();
    by_conf.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("finite confidences")
            .then(b.support.cmp(&a.support))
    });
    println!("top {} patterns by confidence:", top.min(by_conf.len()));
    for p in by_conf.iter().take(top) {
        println!("  {} (support {})", p.display(&model.regions), p.support);
    }
    Ok(())
}

/// ASCII density map of frequent-region centroids (support-weighted).
fn region_map(regions: &hpm_patterns::RegionSet, cols: usize, rows: usize) -> String {
    let all = regions.all();
    let Some(bbox) =
        hpm_geo::BoundingBox::from_points(&all.iter().map(|r| r.centroid).collect::<Vec<_>>())
    else {
        return "(no regions)\n".into();
    };
    let w = bbox.width().max(1e-9);
    let h = bbox.height().max(1e-9);
    let mut grid = vec![0u64; cols * rows];
    for r in all {
        let cx = (((r.centroid.x - bbox.min.x) / w) * (cols - 1) as f64).round() as usize;
        // Flip y: terminal rows grow downward.
        let cy = (((bbox.max.y - r.centroid.y) / h) * (rows - 1) as f64).round() as usize;
        grid[cy.min(rows - 1) * cols + cx.min(cols - 1)] += u64::from(r.support);
    }
    let max = grid.iter().copied().max().unwrap_or(0).max(1);
    const SHADES: &[u8] = b" .:-=+*#%@";
    let mut out = String::with_capacity((cols + 3) * (rows + 3));
    out.push_str(&format!(
        "region density map [{:.0},{:.0}]..[{:.0},{:.0}]\n",
        bbox.min.x, bbox.min.y, bbox.max.x, bbox.max.y
    ));
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push_str("+\n");
    for row in 0..rows {
        out.push('|');
        for col in 0..cols {
            let v = grid[row * cols + col];
            let idx = if v == 0 {
                0
            } else {
                1 + ((v * (SHADES.len() as u64 - 2)) / max) as usize
            };
            out.push(SHADES[idx.min(SHADES.len() - 1)] as char);
        }
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push_str("+\n");
    out
}

/// Reads a batch-query file: one query time per line; blank lines and
/// `#` comments are skipped.
fn read_batch_times(path: &str) -> Result<Vec<u64>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read --batch {path}: {e}"))?;
    let mut times = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let t: u64 = line
            .parse()
            .map_err(|_| format!("{path}:{}: cannot parse query time `{line}`", lineno + 1))?;
        times.push(t);
    }
    if times.is_empty() {
        return Err(format!("--batch {path} holds no query times"));
    }
    Ok(times)
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    args.expect_only(&[
        "model",
        "input",
        "at",
        "batch",
        "threads",
        "recent",
        "k",
        "distant",
        "teps",
        "margin",
        "fill-gaps",
        "despike",
        "metrics",
        "metrics-json",
        "prob",
    ])?;
    let prob: bool = args.get_or("prob", false)?;
    let metrics_text: bool = args.get_or("metrics", false)?;
    let metrics_json = args.optional("metrics-json");
    if metrics_text || metrics_json.is_some() {
        // Register the full catalogue up front so the snapshot lists
        // every hot-path metric, including the zero-valued ones (a
        // single query only fires one of the FQP/BQP dispatch arms).
        hpm_core::metrics::register();
        hpm_patterns::metrics::register();
        hpm_store::metrics::register();
        hpm_obs::enable();
    }
    let model = load_model(args.required("model")?)
        .map_err(|e| e.to_string())?
        .map_err(|e| e.to_string())?;
    let traj = load_input(args)?;
    let config = HpmConfig {
        k: args.get_or("k", 1)?,
        distant_threshold: args.get_or("distant", 60)?,
        time_relaxation: args.get_or("teps", 2)?,
        match_margin: args.get_or("margin", 30.0)?,
        ..HpmConfig::default()
    };
    let predictor = HybridPredictor::from_parts(model.regions, model.patterns, config);
    let recent_len: usize = args.get_or("recent", 20)?;
    let (recent, _) = traj.recent_window(recent_len);
    let current_time = traj.end() - 1;
    if let Some(batch) = args.optional("batch") {
        if args.optional("at").is_some() {
            return Err("--at and --batch are mutually exclusive".into());
        }
        let times = read_batch_times(batch)?;
        if let Some(&bad) = times.iter().find(|&&t| t <= current_time) {
            return Err(format!(
                "batch query time {bad} is not after the trajectory's last timestamp {current_time}"
            ));
        }
        let pool = hpm_objectstore::WorkerPool::sized(args.get_or("threads", 0)?);
        let preds = pool.run(times.len(), |i| {
            predictor.predict(&PredictiveQuery {
                recent,
                current_time,
                query_time: times[i],
            })
        });
        println!(
            "object now at {} (t={current_time}); {} batch queries on {} threads:",
            recent.last().expect("non-empty trajectory"),
            times.len(),
            pool.threads()
        );
        for (t, pred) in times.iter().zip(&preds) {
            let score = pred.answers.first().map_or(0.0, |a| a.score);
            println!(
                "  t={t}: {} via {:?} (score {score:.3})",
                pred.best(),
                pred.source
            );
            if prob {
                for a in &pred.answers {
                    println!(
                        "      mass {:.3} in [{}..{}]",
                        a.uncertainty.mass, a.uncertainty.region.min, a.uncertainty.region.max
                    );
                }
            }
        }
    } else {
        let query_time: u64 = args.get("at")?;
        if query_time <= current_time {
            return Err(format!(
                "--at {query_time} is not after the trajectory's last timestamp {current_time}"
            ));
        }
        let pred = predictor.predict(&PredictiveQuery {
            recent,
            current_time,
            query_time,
        });
        println!(
            "object now at {} (t={current_time}); at t={query_time} predicted via {:?}:",
            recent.last().expect("non-empty trajectory"),
            pred.source
        );
        for (rank, a) in pred.answers.iter().enumerate() {
            println!("  #{} {} (score {:.3})", rank + 1, a.location, a.score);
            if prob {
                println!(
                    "     mass {:.3} in [{}..{}]",
                    a.uncertainty.mass, a.uncertainty.region.min, a.uncertainty.region.max
                );
            }
        }
    }
    if metrics_text || metrics_json.is_some() {
        let snap = hpm_obs::snapshot();
        if metrics_text {
            println!("\n-- metrics --");
            print!("{snap}");
        }
        if let Some(path) = metrics_json {
            if path == "-" {
                println!("{}", snap.to_json());
            } else {
                std::fs::write(path, snap.to_json())
                    .map_err(|e| format!("cannot write --metrics-json {path}: {e}"))?;
            }
        }
    }
    Ok(())
}

/// Streams a trajectory CSV into a durable
/// [`MovingObjectStore`](hpm_objectstore::MovingObjectStore) on
/// `--data-dir`, recovering whatever an earlier (possibly crashed)
/// run persisted there. With `--resume` (the default) reports that
/// are already durable are skipped, so re-running the same command
/// after a crash completes the ingest instead of failing on the
/// overlap. `--predict-at` answers queries from the ingested store;
/// the `PREDICT`/`STATS` lines print floats with `{:?}` so two runs
/// can be diffed byte-for-byte.
fn cmd_ingest(args: &Args) -> Result<(), String> {
    use hpm_objectstore::{
        DurabilityConfig, FsyncPolicy, IngestError, MovingObjectStore, ObjectId, StoreConfig,
    };

    args.expect_only(&[
        "input",
        "data-dir",
        "period",
        "eps",
        "min-pts",
        "min-conf",
        "min-support",
        "max-premise",
        "max-gap",
        "max-span",
        "min-train",
        "retrain-every",
        "k",
        "margin",
        "group-commit",
        "fsync",
        "snapshot-every",
        "resume",
        "predict-at",
        "fill-gaps",
        "despike",
    ])?;
    let traj = load_input(args)?;
    let config = StoreConfig {
        discovery: DiscoveryParams {
            period: args.get("period")?,
            eps: args.get_or("eps", 2.0)?,
            min_pts: args.get_or("min-pts", 3)?,
        },
        mining: mining_from(args)?,
        hpm: HpmConfig {
            k: args.get_or("k", 1)?,
            match_margin: args.get_or("margin", 30.0)?,
            ..HpmConfig::default()
        },
        min_train_subs: args.get_or("min-train", 3)?,
        retrain_every_subs: args.get_or("retrain-every", 1)?,
        recent_len: 2,
        shards: 1,
        threads: 1,
        index: hpm_objectstore::IndexConfig::default(),
    };
    let durability = DurabilityConfig {
        dir: args.required("data-dir")?.into(),
        group_commit: args.get_or("group-commit", 1)?,
        fsync: match args.get_or("fsync", "always".to_string())?.as_str() {
            "always" => FsyncPolicy::Always,
            "never" => FsyncPolicy::Never,
            other => return Err(format!("--fsync must be always|never, got `{other}`")),
        },
        snapshot_every: args.get_or("snapshot-every", 0)?,
    };
    let resume: bool = args.get_or("resume", true)?;

    let store = MovingObjectStore::open(config, durability).map_err(|e| e.to_string())?;
    let id = ObjectId(1);
    let (mut ingested, mut skipped) = (0u64, 0u64);
    for (i, p) in traj.points().iter().enumerate() {
        let t = traj.start() + i as hpm_trajectory::Timestamp;
        match store.report(id, t, *p) {
            Ok(()) => ingested += 1,
            // Already durable from a previous run: the store is ahead
            // of this sample, not diverged.
            Err(IngestError::NonContiguous { expected, got }) if resume && got < expected => {
                skipped += 1;
            }
            Err(e) => return Err(format!("report at t={t} failed: {e}")),
        }
    }
    store.flush_wal().map_err(|e| e.to_string())?;
    println!("INGESTED {ingested} skipped {skipped}");
    let s = store.stats(id).map_err(|e| e.to_string())?;
    println!(
        "STATS samples={} full_periods={} trained_periods={} regions={} patterns={}",
        s.samples, s.full_periods, s.trained_periods, s.regions, s.patterns
    );
    // Off the STATS line on purpose: resident bytes differ between a
    // store that grew online and one that recovered from disk, and
    // crash smoke scripts diff STATS byte-for-byte.
    println!("MEM approx_bytes={}", s.approx_bytes);
    if let Some(list) = args.optional("predict-at") {
        for raw in list.split(',') {
            let t: u64 = raw
                .trim()
                .parse()
                .map_err(|_| format!("--predict-at: cannot parse `{raw}`"))?;
            match store.predict(id, t) {
                Ok(pred) => {
                    let best = pred.best();
                    println!(
                        "PREDICT t={t} x={:?} y={:?} source={:?}",
                        best.x, best.y, pred.source
                    );
                }
                Err(e) => println!("PREDICT t={t} error={e}"),
            }
        }
    }
    Ok(())
}

/// Queries a running server for one object's stats (the Stats verb)
/// and the fleet-wide memory gauges the Metrics verb refreshes.
///
/// `approx_bytes` goes on its own `MEM` line, not the `STATS` line:
/// crash-recovery smoke scripts diff `STATS` byte-for-byte between
/// runs, and resident bytes legitimately differ between a store that
/// grew its capacities online and one that recovered them from disk.
fn cmd_stats(args: &Args) -> Result<(), String> {
    use hpm_objectstore::ObjectId;
    use hpm_server::Client;

    args.expect_only(&["addr", "id", "mem", "shutdown"])?;
    let addr = args.required("addr")?;
    let id = ObjectId(args.get("id")?);
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let s = client
        .stats(id)
        .map_err(|e| format!("stats request failed: {e}"))?
        .map_err(|e| format!("server rejected stats: {e}"))?;
    println!(
        "STATS samples={} full_periods={} trained_periods={} regions={} patterns={}",
        s.samples, s.full_periods, s.trained_periods, s.regions, s.patterns
    );
    println!("MEM approx_bytes={}", s.approx_bytes);
    if args.get_or("mem", true)? {
        let json = client
            .metrics_json()
            .map_err(|e| format!("metrics request failed: {e}"))?;
        // Literal key scan: the obs JSON render never escapes these
        // fixed metric names (the workspace is hermetic, no serde).
        let gauge = |name: &str| -> Option<i64> {
            let key = format!("\"{name}\":");
            let at = json.find(&key)? + key.len();
            let rest = &json[at..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit() && c != '-')
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        if let (Some(total), Some(per_obj)) = (
            gauge("store.mem.bytes"),
            gauge("store.mem.bytes_per_object"),
        ) {
            println!("MEM store_bytes={total} bytes_per_object={per_obj}");
        }
    }
    // Admin convenience for scripted smoke tests: probe, then stop the
    // server in the same invocation.
    if args.get_or("shutdown", false)? {
        client
            .shutdown()
            .map_err(|e| format!("shutdown verb failed: {e}"))?;
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    use hpm_objectstore::{DurabilityConfig, FsyncPolicy, MovingObjectStore, StoreConfig};
    use hpm_server::{Server, ServerConfig};
    use std::io::Write as _;
    use std::sync::Arc;

    args.expect_only(&[
        "addr",
        "data-dir",
        "period",
        "eps",
        "min-pts",
        "min-conf",
        "min-support",
        "max-premise",
        "max-gap",
        "max-span",
        "min-train",
        "retrain-every",
        "k",
        "margin",
        "recent",
        "shards",
        "threads",
        "group-commit",
        "fsync",
        "snapshot-every",
        "max-frame",
        "queue-depth",
    ])?;
    let addr = args.required("addr")?;
    let config = StoreConfig {
        discovery: DiscoveryParams {
            period: args.get("period")?,
            eps: args.get_or("eps", 2.0)?,
            min_pts: args.get_or("min-pts", 3)?,
        },
        mining: mining_from(args)?,
        hpm: HpmConfig {
            k: args.get_or("k", 1)?,
            match_margin: args.get_or("margin", 30.0)?,
            ..HpmConfig::default()
        },
        min_train_subs: args.get_or("min-train", 3)?,
        retrain_every_subs: args.get_or("retrain-every", 1)?,
        recent_len: args.get_or("recent", 2)?,
        shards: args.get_or("shards", 4)?,
        threads: args.get_or("threads", 0)?,
        index: hpm_objectstore::IndexConfig::default(),
    };
    // The served registry should catalogue every layer's metrics even
    // before traffic touches them.
    hpm_core::metrics::register();
    hpm_patterns::metrics::register();
    hpm_store::metrics::register();
    hpm_objectstore::metrics::register();
    hpm_server::metrics::register();
    hpm_obs::enable();
    let store = match args.optional("data-dir") {
        Some(dir) => {
            let durability = DurabilityConfig {
                dir: dir.into(),
                group_commit: args.get_or("group-commit", 1)?,
                fsync: match args.get_or("fsync", "always".to_string())?.as_str() {
                    "always" => FsyncPolicy::Always,
                    "never" => FsyncPolicy::Never,
                    other => return Err(format!("--fsync must be always|never, got `{other}`")),
                },
                snapshot_every: args.get_or("snapshot-every", 0)?,
            };
            MovingObjectStore::open(config, durability).map_err(|e| e.to_string())?
        }
        None => MovingObjectStore::new(config),
    };
    let server_config = ServerConfig {
        max_frame: args.get_or("max-frame", ServerConfig::default().max_frame)?,
        queue_depth: args.get_or("queue-depth", ServerConfig::default().queue_depth)?,
        ..ServerConfig::default()
    };
    let server = Server::bind(Arc::new(store), addr, server_config).map_err(|e| e.to_string())?;
    // The bound address goes out immediately (and flushed) so scripts
    // using --addr HOST:0 can parse the picked port before connecting.
    println!("LISTENING {}", server.local_addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.serve().map_err(|e| e.to_string())?;
    println!("SHUTDOWN clean");
    Ok(())
}

fn cmd_staypoints(args: &Args) -> Result<(), String> {
    args.expect_only(&["input", "radius", "min-duration", "fill-gaps", "despike"])?;
    let traj = load_input(args)?;
    let radius: f64 = args.get("radius")?;
    let min_duration: u64 = args.get("min-duration")?;
    let points = hpm_trajectory::stay_points(&traj, radius, min_duration);
    println!(
        "{} stay points (radius {radius}, min duration {min_duration}):",
        points.len()
    );
    println!("{:>10} {:>10} {:>9}  center", "start", "end", "duration");
    for sp in &points {
        println!(
            "{:>10} {:>10} {:>9}  {}",
            sp.start,
            sp.end,
            sp.duration(),
            sp.center
        );
    }
    Ok(())
}

fn cmd_simplify(args: &Args) -> Result<(), String> {
    args.expect_only(&["input", "epsilon", "output", "fill-gaps", "despike"])?;
    let traj = load_input(args)?;
    let epsilon: f64 = args.get("epsilon")?;
    if !(epsilon >= 0.0 && epsilon.is_finite()) {
        return Err(format!("--epsilon must be non-negative, got {epsilon}"));
    }
    let kept = hpm_geo::simplify_rdp_indices(traj.points(), epsilon);
    // The simplified chain is a sparse polyline, not a sampled
    // trajectory: emit the kept vertices with their original
    // timestamps.
    let output = args.required("output")?;
    let file = std::fs::File::create(output).map_err(|e| e.to_string())?;
    use std::io::Write;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "t,x,y").map_err(|e| e.to_string())?;
    for &i in &kept {
        let v = traj.points()[i];
        writeln!(w, "{},{},{}", traj.start() + i as u64, v.x, v.y).map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())?;
    println!(
        "kept {} of {} vertices (epsilon {epsilon}) -> {output}",
        kept.len(),
        traj.len()
    );
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    args.expect_only(&[
        "input",
        "period",
        "train-subs",
        "length",
        "queries",
        "recent",
        "extent",
        "eps",
        "min-pts",
        "min-conf",
        "fill-gaps",
        "despike",
        "calibration",
        "tolerance",
    ])?;
    let traj = load_input(args)?;
    let period: u32 = args.get("period")?;
    let train_subs: usize = args.get("train-subs")?;
    let length: u32 = args.get("length")?;
    let discovery = DiscoveryParams {
        period,
        eps: args.get_or("eps", 30.0)?,
        min_pts: args.get_or("min-pts", 4)?,
    };
    let mining = MiningParams {
        min_confidence: args.get_or("min-conf", 0.3)?,
        ..MiningParams::paper_defaults()
    };
    let extent: f64 = args.get_or("extent", 10_000.0)?;
    let train = training_slice(&traj, period, train_subs);
    let predictor = HybridPredictor::build(&train, &discovery, &mining, HpmConfig::default());
    let queries = make_workload(
        &traj,
        period,
        &WorkloadParams {
            train_subs,
            recent_len: args.get_or("recent", 20)?,
            prediction_length: length,
            num_queries: args.get_or("queries", 50)?,
        },
    );
    println!(
        "{} patterns over {} regions; {} queries at prediction length {length}",
        predictor.patterns().len(),
        predictor.regions().len(),
        queries.len()
    );
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>9}",
        "", "mean", "median", "p95", "max"
    );
    let hpm = error_stats(|q| predictor.predict(q).best(), &queries, extent);
    let rmf = error_stats(
        |q| {
            Rmf::fit(q.recent, 3)
                .map(|m| m.predict(q.prediction_length()))
                .unwrap_or_else(|| *q.recent.last().expect("non-empty recent"))
        },
        &queries,
        extent,
    );
    let linear = error_stats(
        |q| {
            LinearMotion::fit(q.recent)
                .map(|m| m.predict(q.prediction_length()))
                .unwrap_or_else(|| *q.recent.last().expect("non-empty recent"))
        },
        &queries,
        extent,
    );
    for (name, s) in [("HPM", hpm), ("RMF", rmf), ("linear", linear)] {
        println!(
            "{name:<8} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            s.mean, s.median, s.p95, s.max
        );
    }
    let b = source_breakdown(&predictor, &queries, extent);
    println!(
        "HPM paths: FQP {}q (err {:.1}) | BQP {}q (err {:.1}) | motion fallback {}q (err {:.1})",
        b.forward.0, b.forward.1, b.backward.0, b.backward.1, b.motion.0, b.motion.1
    );
    if args.get_or("calibration", false)? {
        let c = hpm_core::eval::calibration(&predictor, &queries);
        println!(
            "CALIBRATION predicted_mass={:.3} hit_rate={:.3} gap={:.3}",
            c.predicted_mass,
            c.hit_rate,
            c.gap()
        );
        if let Some(raw) = args.optional("tolerance") {
            let tolerance: f64 = raw
                .parse()
                .map_err(|_| format!("--tolerance: cannot parse `{raw}`"))?;
            if tolerance.is_nan() || tolerance < 0.0 {
                return Err(format!("--tolerance must be non-negative, got {tolerance}"));
            }
            if c.gap().abs() > tolerance {
                return Err(format!(
                    "calibration gap {:.3} exceeds tolerance {tolerance}",
                    c.gap()
                ));
            }
        }
    } else if args.optional("tolerance").is_some() {
        return Err("--tolerance requires --calibration true".into());
    }
    Ok(())
}
