//! Wildlife tracking on the Cow dataset (the paper's CSIRO
//! virtual-fencing scenario): distant-time queries — "where will the
//! animal be this afternoon?" — answered by Backward Query Processing,
//! plus the incremental path: new GPS days arrive, fresh patterns are
//! mined and inserted into the live TPT.
//!
//! ```text
//! cargo run --release --example wildlife_tracking
//! ```

use hybrid_prediction_model::core::eval::training_slice;
use hybrid_prediction_model::core::{HpmConfig, HybridPredictor, PredictiveQuery};
use hybrid_prediction_model::datagen::{paper_dataset, PaperDataset, PERIOD};
use hybrid_prediction_model::patterns::{mine, visits_against, DiscoveryParams, MiningParams};
use hybrid_prediction_model::trajectory::Timestamp;

fn discovery() -> DiscoveryParams {
    DiscoveryParams {
        period: PERIOD,
        eps: 30.0,
        min_pts: 4,
    }
}

fn mining_params() -> MiningParams {
    MiningParams {
        min_support: 4,
        min_confidence: 0.3,
        max_premise_len: 2,
        max_premise_gap: 8,
        max_span: 64,
    }
}

fn main() {
    // 70 days of a GPS-tagged cow; train on the first 40.
    let traj = paper_dataset(PaperDataset::Cow, 99).generate_subs(70);
    let train = training_slice(&traj, PERIOD, 40);
    let mut predictor = HybridPredictor::build(
        &train,
        &discovery(),
        &mining_params(),
        HpmConfig {
            k: 3, // rangers want the top 3 candidate areas
            ..HpmConfig::default()
        },
    );
    println!(
        "initial herd model: {} regions, {} patterns",
        predictor.regions().len(),
        predictor.patterns().len()
    );

    // It is early "morning" of day 55 (offset 20); the collar reports
    // the last 10 positions. Ask where the cow will be at offset 170 —
    // a distant-time query (150 offsets ahead, threshold d = 60).
    let day = 55usize;
    let tc_index = day * PERIOD as usize + 20;
    let recent = &traj.points()[tc_index - 9..=tc_index];
    let current_time = tc_index as Timestamp;
    let query = PredictiveQuery {
        recent,
        current_time,
        query_time: current_time + 150,
    };
    let pred = predictor.predict(&query);
    let truth = traj.points()[tc_index + 150];
    println!(
        "\ndistant-time query (+150 offsets) answered by {:?}:",
        pred.source
    );
    for (rank, a) in pred.answers.iter().enumerate() {
        println!(
            "  #{} {} (score {:.3}{})",
            rank + 1,
            a.location,
            a.score,
            a.pattern
                .map(|p| format!(", pattern {p}"))
                .unwrap_or_default()
        );
    }
    println!(
        "  actual position: {} (best error {:.0})",
        truth,
        pred.best().distance(&truth)
    );

    // Two weeks later: 14 more days of collar data accumulated. Map
    // the grown history onto the *existing* region vocabulary, re-mine,
    // and insert the genuinely new rules into the live index (§V.B's
    // dynamic path) — no rebuild.
    let grown = training_slice(&traj, PERIOD, 54);
    let visits = visits_against(&grown, predictor.regions(), 30.0);
    let refreshed = mine(predictor.regions(), &visits, &mining_params());
    let known: std::collections::HashSet<_> = predictor
        .patterns()
        .iter()
        .map(|p| (p.premise.clone(), p.consequence))
        .collect();
    let consequence_offsets: std::collections::HashSet<_> = predictor
        .key_table()
        .consequence_offsets()
        .iter()
        .copied()
        .collect();
    let fresh: Vec<_> = refreshed
        .into_iter()
        .filter(|p| {
            // The key table's consequence vocabulary is fixed at build
            // time; rules predicting a brand-new offset need a rebuild.
            consequence_offsets.contains(&p.consequence_offset(predictor.regions()))
                && !known.contains(&(p.premise.clone(), p.consequence))
        })
        .take(500)
        .collect();
    let added = fresh.len();
    predictor.insert_patterns(fresh);
    println!(
        "\nincremental update: inserted {added} new patterns, index now holds {} (valid: {:?})",
        predictor.tpt().len(),
        predictor.tpt().validate().is_ok()
    );

    // The same query again, now backed by the refreshed pattern store.
    let pred2 = predictor.predict(&query);
    println!(
        "re-asked query: best {} via {:?} (error {:.0})",
        pred2.best(),
        pred2.source,
        pred2.best().distance(&truth)
    );
}
