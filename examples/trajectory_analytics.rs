//! Trajectory analytics: the supporting toolbox around the predictor —
//! stay-point detection, convex-hull region summaries, RDP compaction,
//! and RMF stability analysis — run over one synthetic commuter.
//!
//! ```text
//! cargo run --release --example trajectory_analytics
//! ```

use hybrid_prediction_model::datagen::{paper_dataset, PaperDataset, PERIOD};
use hybrid_prediction_model::geo::{convex_hull, polygon_area, simplify_rdp_indices};
use hybrid_prediction_model::motion::Rmf;
use hybrid_prediction_model::patterns::{discover, DiscoveryParams};
use hybrid_prediction_model::trajectory::stay_points;

fn main() {
    let traj = paper_dataset(PaperDataset::Cow, 11).generate_subs(40);
    println!(
        "analysing {} samples ({} days of period {PERIOD})\n",
        traj.len(),
        traj.len() / PERIOD as usize
    );

    // 1. Stay points: where does the animal dwell?
    let stays = stay_points(&traj, 120.0, 8);
    println!(
        "stay points (within 120 units for >= 8 timestamps): {}",
        stays.len()
    );
    for sp in stays.iter().take(5) {
        println!(
            "  t {:>6}..{:<6} ({} steps) around {}",
            sp.start,
            sp.end,
            sp.duration(),
            sp.center
        );
    }
    if stays.len() > 5 {
        println!("  … and {} more", stays.len() - 5);
    }

    // 2. Frequent regions summarised by hulls: how much tighter than
    // the bounding boxes the paper draws?
    let out = discover(
        &traj,
        &DiscoveryParams {
            period: PERIOD,
            eps: 30.0,
            min_pts: 4,
        },
    );
    let mut hull_area = 0.0;
    let mut bbox_area = 0.0;
    let groups = hybrid_prediction_model::trajectory::OffsetGroups::build(&traj, PERIOD);
    for region in out.regions.all().iter().take(50) {
        // Re-collect the member locations of this region's offset that
        // fall inside its box (a cheap stand-in for cluster members).
        let members: Vec<_> = groups
            .group(region.offset)
            .iter()
            .map(|&(_, p)| p)
            .filter(|p| region.bbox.contains(p))
            .collect();
        let hull = convex_hull(&members);
        hull_area += polygon_area(&hull);
        bbox_area += region.bbox.area();
    }
    println!(
        "\nregion summaries over the first 50 frequent regions:\n  convex hulls cover {:.0}% of the bounding-box area",
        100.0 * hull_area / bbox_area.max(1e-9)
    );

    // 3. RDP compaction: how few vertices carry the day's shape?
    let day = &traj.points()[..PERIOD as usize];
    for eps in [10.0, 30.0, 100.0] {
        let kept = simplify_rdp_indices(day, eps);
        println!(
            "rdp(eps {eps:>5}): day 0 compacts {} -> {} vertices ({:.0}%)",
            day.len(),
            kept.len(),
            100.0 * kept.len() as f64 / day.len() as f64
        );
    }

    // 4. RMF stability: why motion functions drift at long horizons.
    println!("\nRMF stability along the day (retrospect 3, window 20):");
    for start in [20usize, 100, 200] {
        let window = &traj.points()[start..start + 20];
        if let Some(rmf) = Rmf::fit(window, 3) {
            let radius = rmf.spectral_radius();
            println!(
                "  window at t={start:<4}: spectral radius {radius:.4} -> {}",
                if rmf.is_stable() {
                    "stable (bounded rollout)"
                } else {
                    "UNSTABLE (diverges on long horizons)"
                }
            );
        }
    }
}
