//! Fleet monitoring: the multi-object store ingesting live reports for
//! a fleet of vehicles, retraining per-object predictors as history
//! accumulates, answering dispatch queries concurrently, and
//! persisting a trained model to disk with the binary codec.
//!
//! ```text
//! cargo run --release --example fleet_monitoring
//! ```

use hybrid_prediction_model::core::{HpmConfig, HybridPredictor};
use hybrid_prediction_model::datagen::{paper_dataset, PaperDataset, PERIOD};
use hybrid_prediction_model::objectstore::{MovingObjectStore, ObjectId, StoreConfig};
use hybrid_prediction_model::patterns::{DiscoveryParams, MiningParams};
use hybrid_prediction_model::store::{decode_model, encode_model};

fn main() {
    let store = MovingObjectStore::new(StoreConfig {
        discovery: DiscoveryParams {
            period: PERIOD,
            eps: 30.0,
            min_pts: 4,
        },
        mining: MiningParams {
            min_support: 4,
            min_confidence: 0.3,
            max_premise_len: 2,
            max_premise_gap: 8,
            max_span: 64,
        },
        hpm: HpmConfig::default(),
        min_train_subs: 20,
        retrain_every_subs: 10,
        recent_len: 20,
        shards: 8,
        threads: 0,
        index: hpm_objectstore::IndexConfig::default(),
    });

    // Three vehicles with different route habits stream 45 "days" of
    // reports each (in day-sized batches, as a telematics backend
    // would).
    let fleet = [
        (ObjectId(1), PaperDataset::Car),
        (ObjectId(2), PaperDataset::Bike),
        (ObjectId(3), PaperDataset::Cow), // a very slow delivery van
    ];
    for (id, archetype) in fleet {
        let traj = paper_dataset(archetype, id.0).generate_subs(45);
        for d in 0..45usize {
            let day = &traj.points()[d * PERIOD as usize..(d + 1) * PERIOD as usize];
            store
                .report_batch(id, (d * PERIOD as usize) as u64, day)
                .expect("contiguous feed");
        }
    }

    println!("fleet state after 45 days of reports:");
    for (id, archetype) in fleet {
        let s = store.stats(id).unwrap();
        println!(
            "  {id} ({:<4}): {} samples, trained on {} days, {} regions, {} patterns",
            archetype.name(),
            s.samples,
            s.trained_periods,
            s.regions,
            s.patterns
        );
    }

    // Dispatch asks: where will each vehicle be 30 and 120 timestamps
    // from now?
    let now = 45 * PERIOD as u64 - 1;
    println!("\ndispatch queries (current time {now}):");
    for (id, _) in fleet {
        for ahead in [30u64, 120] {
            let pred = store.predict(id, now + ahead).unwrap();
            println!(
                "  {id} in +{ahead:<3}: {} via {:?}",
                pred.best(),
                pred.source
            );
        }
    }

    // Nightly job: persist vehicle 1's trained model and verify the
    // blob round-trips into a working predictor.
    let traj = paper_dataset(PaperDataset::Car, 1).generate_subs(45);
    let out = hybrid_prediction_model::patterns::discover(
        &traj,
        &DiscoveryParams {
            period: PERIOD,
            eps: 30.0,
            min_pts: 4,
        },
    );
    let patterns = hybrid_prediction_model::patterns::mine(
        &out.regions,
        &out.visits,
        &MiningParams {
            min_support: 4,
            min_confidence: 0.3,
            max_premise_len: 2,
            max_premise_gap: 8,
            max_span: 64,
        },
    );
    let blob = encode_model(&out.regions, &patterns);
    println!(
        "\npersisted vehicle 1's model: {} regions + {} patterns -> {:.1} KiB",
        out.regions.len(),
        patterns.len(),
        blob.len() as f64 / 1024.0
    );
    let restored = decode_model(&blob).expect("round-trip");
    let predictor =
        HybridPredictor::from_parts(restored.regions, restored.patterns, HpmConfig::default());
    println!(
        "restored predictor: {} patterns indexed, TPT height {}",
        predictor.patterns().len(),
        predictor.tpt().height()
    );
}
