//! Quickstart: build a Hybrid Prediction Model over a movement history
//! and answer near- and distant-time predictive queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hybrid_prediction_model::core::{HpmConfig, HybridPredictor, PredictiveQuery};
use hybrid_prediction_model::geo::Point;
use hybrid_prediction_model::patterns::{DiscoveryParams, MiningParams};
use hybrid_prediction_model::trajectory::Trajectory;

fn main() {
    // A commuter sampled once per "hour" over an 8-offset day, 120
    // days: home, two road positions, the office for three offsets,
    // then a gym-or-bar split, then home again.
    let day_template = [
        Point::new(100.0, 100.0), // 0: home
        Point::new(400.0, 150.0), // 1: arterial road
        Point::new(700.0, 300.0), // 2: downtown ramp
        Point::new(900.0, 500.0), // 3: office
        Point::new(900.0, 500.0), // 4: office
        Point::new(900.0, 500.0), // 5: office
        Point::new(600.0, 800.0), // 6: gym (odd days: bar, see below)
        Point::new(100.0, 100.0), // 7: home
    ];
    let bar = Point::new(300.0, 900.0);
    let mut samples = Vec::new();
    for day in 0..120usize {
        for (offset, base) in day_template.iter().enumerate() {
            let mut p = *base;
            if offset == 6 && day % 2 == 1 {
                p = bar;
            }
            // A little GPS jitter.
            let jitter = ((day * 31 + offset * 7) % 13) as f64 - 6.0;
            samples.push(p + Point::new(jitter, -jitter));
        }
    }
    let history = Trajectory::from_points(samples);

    // Discover frequent regions and mine trajectory patterns.
    let predictor = HybridPredictor::build(
        &history,
        &DiscoveryParams {
            period: 8, // one "day"
            eps: 20.0, // DBSCAN neighbourhood
            min_pts: 4,
        },
        &MiningParams {
            min_support: 10,
            min_confidence: 0.3,
            max_premise_len: 2,
            max_premise_gap: 3,
            max_span: 7,
        },
        HpmConfig {
            k: 3,                 // return the top 3 candidate places
            distant_threshold: 4, // "distant" = more than half a day out
            time_relaxation: 1,
            match_margin: 20.0,
            ..HpmConfig::default()
        },
    );

    println!(
        "discovered {} frequent regions, mined {} trajectory patterns (TPT height {})",
        predictor.regions().len(),
        predictor.patterns().len(),
        predictor.tpt().height(),
    );
    for p in predictor.patterns().iter().take(5) {
        println!("  e.g. {}", p.display(predictor.regions()));
    }

    // It is day 120, offset 1: the object just left home and is on the
    // arterial road.
    let recent = [Point::new(102.0, 98.0), Point::new(398.0, 152.0)];
    let now = 120 * 8 + 1;

    // Near-future query: where at offset 3 (in 2 hours)? FQP matches
    // the home→road premise and predicts the office.
    let near = predictor.predict(&PredictiveQuery {
        recent: &recent,
        current_time: now,
        query_time: now + 2,
    });
    println!(
        "\nnear query (+2h, at the office hours) via {:?}:",
        near.source
    );
    for (rank, a) in near.answers.iter().enumerate() {
        println!("  #{} {} (score {:.3})", rank + 1, a.location, a.score);
    }

    // Distant-time query: where at offset 6 (in 5 hours)? The recent
    // movements say little; BQP finds where the object usually is
    // around that time.
    let distant = predictor.predict(&PredictiveQuery {
        recent: &recent,
        current_time: now,
        query_time: now + 5,
    });
    println!(
        "distant query (+5h, the gym-or-bar hour) via {:?}:",
        distant.source
    );
    for (rank, a) in distant.answers.iter().enumerate() {
        println!("  #{} {} (score {:.3})", rank + 1, a.location, a.score);
    }

    // A query with movements the model has never seen: no pattern
    // matches and the Recursive Motion Function extrapolates instead.
    let strangers = [
        Point::new(50.0, 950.0),
        Point::new(60.0, 940.0),
        Point::new(70.0, 930.0),
        Point::new(80.0, 920.0),
    ];
    let fallback = predictor.predict(&PredictiveQuery {
        recent: &strangers,
        current_time: now,
        query_time: now + 2,
    });
    println!(
        "unseen route (+2h): {} via {:?}",
        fallback.best(),
        fallback.source
    );
}
