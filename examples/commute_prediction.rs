//! The paper's Fig. 1 motivation, reproduced on the Car dataset: a
//! commute over a road grid with sharp 90° turns defeats motion
//! functions, while the Hybrid Prediction Model rides its patterns
//! through the turns.
//!
//! ```text
//! cargo run --release --example commute_prediction
//! ```

use hybrid_prediction_model::core::eval::{
    avg_error_hpm, avg_error_rmf, make_workload, training_slice, WorkloadParams,
};
use hybrid_prediction_model::core::{HpmConfig, HybridPredictor};
use hybrid_prediction_model::datagen::{paper_dataset, PaperDataset, EXTENT, PERIOD};
use hybrid_prediction_model::patterns::{DiscoveryParams, MiningParams};

fn main() {
    // 80 "days" of a commuter car on a Manhattan-style grid; the last
    // 20 days are held out for querying.
    let traj = paper_dataset(PaperDataset::Car, 7).generate_subs(80);
    let train = training_slice(&traj, PERIOD, 60);

    let predictor = HybridPredictor::build(
        &train,
        &DiscoveryParams {
            period: PERIOD,
            eps: 30.0,
            min_pts: 4,
        },
        &MiningParams {
            min_support: 4,
            min_confidence: 0.3,
            max_premise_len: 2,
            max_premise_gap: 8,
            max_span: 64,
        },
        HpmConfig::default(),
    );
    println!(
        "car history: {} frequent regions, {} patterns",
        predictor.regions().len(),
        predictor.patterns().len()
    );

    println!("\nprediction-length sweep (50 queries each):");
    println!(
        "{:>8} {:>12} {:>12} {:>8}",
        "length", "HPM error", "RMF error", "ratio"
    );
    for length in [20u32, 50, 100, 150, 200] {
        let queries = make_workload(
            &traj,
            PERIOD,
            &WorkloadParams {
                train_subs: 60,
                recent_len: 10,
                prediction_length: length,
                num_queries: 50,
            },
        );
        let hpm = avg_error_hpm(&predictor, &queries, EXTENT);
        let rmf = avg_error_rmf(&queries, 3, EXTENT);
        println!("{length:>8} {hpm:>12.1} {rmf:>12.1} {:>7.1}x", rmf / hpm);
    }

    // Zoom into one query: the car is mid-commute approaching a turn.
    let queries = make_workload(
        &traj,
        PERIOD,
        &WorkloadParams {
            train_subs: 60,
            recent_len: 10,
            prediction_length: 40,
            num_queries: 1,
        },
    );
    let q = &queries[0];
    let pred = predictor.predict(&q.as_query());
    println!(
        "\nsingle query: now at {}, asked +40 steps",
        q.recent.last().unwrap()
    );
    println!("  actual position then : {}", q.truth);
    println!(
        "  HPM answer ({:?}): {} (error {:.0})",
        pred.source,
        pred.best(),
        pred.best().distance(&q.truth)
    );
    if let Some(pid) = pred.answers[0].pattern {
        let pattern = &predictor.patterns()[pid as usize];
        println!(
            "  supporting pattern   : {}",
            pattern.display(predictor.regions())
        );
    }
}
