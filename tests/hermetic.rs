//! Hermetic-build guard: the workspace must compile with zero registry
//! dependencies. Every dependency declared in any Cargo.toml — root or
//! crate, normal/dev/build/workspace — must be an in-tree `hpm-*` path
//! crate. A violation here means `cargo build --offline` will break on
//! machines without a vendored registry.

use std::fs;
use std::path::{Path, PathBuf};

/// Section headers whose entries are dependency names.
const DEP_SECTIONS: [&str; 4] = [
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the root package IS the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn manifest_paths(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates).expect("crates dir") {
        let manifest = entry.expect("dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    out
}

/// Minimal TOML section walk: track the current `[section]` (with
/// `[target.'cfg'.dependencies]` normalised to its trailing part) and
/// collect the keys of dependency sections. No TOML parser needed —
/// manifests in this repo are plain `key = ...` / `key.workspace = true`
/// lines.
fn dependency_names(manifest: &Path) -> Vec<String> {
    let text = fs::read_to_string(manifest).expect("read manifest");
    let mut section = String::new();
    let mut deps = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = header.trim().to_string();
            // `[dependencies.foo]`-style table headers declare `foo`.
            for base in DEP_SECTIONS {
                if let Some(rest) = section.strip_prefix(&format!("{base}.")) {
                    deps.push(rest.to_string());
                }
            }
            // `[target.'cfg(..)'.dependencies]` ends with the section.
            if let Some(i) = section.rfind('.') {
                let tail = &section[i + 1..];
                if DEP_SECTIONS.contains(&tail) {
                    section = tail.to_string();
                }
            }
            continue;
        }
        if DEP_SECTIONS.contains(&section.as_str()) {
            if let Some(eq) = line.find('=') {
                let key = line[..eq].trim().trim_matches('"');
                // `foo.workspace = true` keys come through as `foo.workspace`.
                let name = key.split('.').next().unwrap_or(key);
                deps.push(name.to_string());
            }
        }
    }
    deps
}

#[test]
fn all_dependencies_are_in_tree() {
    let root = workspace_root();
    let mut violations = Vec::new();
    let mut checked = 0;
    for manifest in manifest_paths(&root) {
        checked += 1;
        for dep in dependency_names(&manifest) {
            if !dep.starts_with("hpm-") {
                violations.push(format!("{}: `{}`", manifest.display(), dep));
            }
        }
    }
    assert!(
        checked >= 14,
        "expected root + all crate manifests, saw {checked}"
    );
    assert!(
        violations.is_empty(),
        "registry (non hpm-*) dependencies found — the build is no longer \
         hermetic:\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn every_in_tree_dependency_resolves_to_a_path() {
    // The workspace dependency table must map every hpm-* name to a
    // `crates/<dir>` path that actually exists.
    let root = workspace_root();
    let text = fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    let mut in_table = false;
    let mut seen = 0;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if !in_table || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let path = line
            .split("path =")
            .nth(1)
            .and_then(|s| s.split('"').nth(1))
            .unwrap_or_else(|| panic!("workspace dep without a path: {line}"));
        assert!(
            root.join(path).join("Cargo.toml").is_file(),
            "workspace dep path does not exist: {path}"
        );
        seen += 1;
    }
    assert!(
        seen >= 14,
        "expected the full hpm-* dependency table, saw {seen}"
    );
}
