//! Integration: the moving-objects store over a paper dataset — the
//! full online deployment path.

use hybrid_prediction_model::core::{HpmConfig, PredictionSource};
use hybrid_prediction_model::datagen::{paper_dataset, PaperDataset, PERIOD};
use hybrid_prediction_model::objectstore::{MovingObjectStore, ObjectId, StoreConfig};
use hybrid_prediction_model::patterns::{DiscoveryParams, MiningParams};

fn store() -> MovingObjectStore {
    MovingObjectStore::new(StoreConfig {
        discovery: DiscoveryParams {
            period: PERIOD,
            eps: 30.0,
            min_pts: 4,
        },
        mining: MiningParams {
            min_support: 4,
            min_confidence: 0.3,
            max_premise_len: 2,
            max_premise_gap: 8,
            max_span: 64,
        },
        hpm: HpmConfig::default(),
        min_train_subs: 20,
        retrain_every_subs: 20,
        recent_len: 20,
        shards: 8,
        threads: 0,
        index: hpm_objectstore::IndexConfig::default(),
    })
}

#[test]
fn bike_rider_becomes_predictable() {
    let store = store();
    let id = ObjectId(42);
    let traj = paper_dataset(PaperDataset::Bike, 17).generate_subs(30);

    // Stream the first 10 days: too little history, motion function
    // answers.
    for d in 0..10usize {
        let day = &traj.points()[d * PERIOD as usize..(d + 1) * PERIOD as usize];
        store
            .report_batch(id, (d * PERIOD as usize) as u64, day)
            .unwrap();
    }
    let now = 10 * PERIOD as u64 - 1;
    let early = store.predict(id, now + 50).unwrap();
    assert_eq!(early.source, PredictionSource::MotionFunction);
    assert_eq!(store.stats(id).unwrap().trained_periods, 0);

    // Stream 15 more days: training kicks in at 20 full periods.
    for d in 10..25usize {
        let day = &traj.points()[d * PERIOD as usize..(d + 1) * PERIOD as usize];
        store
            .report_batch(id, (d * PERIOD as usize) as u64, day)
            .unwrap();
    }
    let stats = store.stats(id).unwrap();
    assert!(stats.trained_periods >= 20);
    assert!(stats.patterns > 0, "bike must yield patterns");

    // Mid-period query: patterns should answer, and the answer should
    // be close to where day 25 actually goes.
    let tc = 25 * PERIOD as usize + 100;
    for t in 25 * PERIOD as usize..=tc {
        store.report(id, t as u64, traj.points()[t]).unwrap();
    }
    let pred = store.predict(id, tc as u64 + 50).unwrap();
    assert!(pred.from_patterns(), "expected a pattern answer");
    let truth = traj.points()[tc + 50];
    let err = pred.best().distance(&truth);
    assert!(err < 1_500.0, "error {err} at +50 on the bike route");
}

#[test]
fn many_objects_round_robin() {
    let store = store();
    let datasets = [
        PaperDataset::Bike,
        PaperDataset::Cow,
        PaperDataset::Car,
        PaperDataset::Airplane,
    ];
    let trajs: Vec<_> = datasets
        .iter()
        .map(|d| paper_dataset(*d, 3).generate_subs(22))
        .collect();
    // Interleave day-batches across objects, as a shared backend would
    // receive them.
    for d in 0..22usize {
        for (i, traj) in trajs.iter().enumerate() {
            let day = &traj.points()[d * PERIOD as usize..(d + 1) * PERIOD as usize];
            store
                .report_batch(ObjectId(i as u64), (d * PERIOD as usize) as u64, day)
                .unwrap();
        }
    }
    assert_eq!(store.object_count(), 4);
    for i in 0..4u64 {
        let stats = store.stats(ObjectId(i)).unwrap();
        assert_eq!(stats.samples, 22 * PERIOD as usize);
        assert!(stats.trained_periods >= 20, "object {i} untrained");
        let pred = store
            .predict(ObjectId(i), (22 * PERIOD) as u64 + 9)
            .unwrap();
        assert!(pred.best().is_finite());
    }
    // The strongest-pattern dataset has at least as many patterns as
    // the weakest.
    let bike = store.stats(ObjectId(0)).unwrap().patterns;
    let airplane = store.stats(ObjectId(3)).unwrap().patterns;
    assert!(bike >= airplane, "bike {bike} vs airplane {airplane}");
}
