//! End-to-end pipeline tests on the §VII synthetic datasets: generate,
//! discover, mine, index, query — asserting the paper's headline
//! qualitative results.

use hybrid_prediction_model::core::eval::{
    avg_error_hpm, avg_error_rmf, make_workload, pattern_hit_rate, training_slice, WorkloadParams,
};
use hybrid_prediction_model::core::{HpmConfig, HybridPredictor};
use hybrid_prediction_model::datagen::{paper_dataset, PaperDataset, EXTENT, PERIOD};
use hybrid_prediction_model::patterns::{DiscoveryParams, MiningParams};

/// §VII.A's fixed parameters.
fn discovery() -> DiscoveryParams {
    DiscoveryParams {
        period: PERIOD,
        eps: 30.0,
        min_pts: 4,
    }
}

fn mining() -> MiningParams {
    MiningParams {
        min_support: 4,
        min_confidence: 0.3,
        max_premise_len: 2,
        max_premise_gap: 8,
        max_span: 64,
    }
}

fn build(dataset: PaperDataset, train_subs: usize) -> (HybridPredictor, Vec<f64>) {
    let traj = paper_dataset(dataset, 42).generate_subs(train_subs + 20);
    let train = training_slice(&traj, PERIOD, train_subs);
    let predictor = HybridPredictor::build(&train, &discovery(), &mining(), HpmConfig::default());
    // Errors at prediction lengths 20 and 100 for HPM, then RMF.
    let mut out = Vec::new();
    for len in [20u32, 100] {
        let queries = make_workload(
            &traj,
            PERIOD,
            &WorkloadParams {
                train_subs,
                recent_len: 10,
                prediction_length: len,
                num_queries: 50,
            },
        );
        out.push(avg_error_hpm(&predictor, &queries, EXTENT));
        out.push(avg_error_rmf(&queries, 3, EXTENT));
    }
    (predictor, out)
}

#[test]
fn bike_hpm_beats_rmf_and_stays_flat() {
    let (predictor, errs) = build(PaperDataset::Bike, 60);
    let (hpm20, rmf20, hpm100, rmf100) = (errs[0], errs[1], errs[2], errs[3]);
    assert!(!predictor.patterns().is_empty(), "bike must yield patterns");
    // Fig. 5's shape: HPM error low and roughly flat in prediction
    // length; RMF rises sharply.
    assert!(
        hpm100 < rmf100,
        "hpm {hpm100} vs rmf {rmf100} at length 100"
    );
    assert!(rmf100 > rmf20, "rmf must degrade with length");
    assert!(
        hpm100 < rmf100 / 2.0,
        "distant-time advantage should be large: {hpm100} vs {rmf100}"
    );
    assert!(hpm20 < 1_000.0, "near error too large: {hpm20}");
}

#[test]
fn car_sharp_turns_hurt_rmf_more() {
    let (_, errs) = build(PaperDataset::Car, 60);
    let (hpm100, rmf100) = (errs[2], errs[3]);
    assert!(hpm100 < rmf100, "hpm {hpm100} vs rmf {rmf100}");
}

#[test]
fn airplane_patterns_weakest() {
    // The airplane dataset has probability f = 0.55 and four spread
    // routes: it should discover fewer patterns than bike and lean on
    // the motion fallback more.
    let (bike, _) = build(PaperDataset::Bike, 60);
    let (airplane, _) = build(PaperDataset::Airplane, 60);
    assert!(
        airplane.patterns().len() < bike.patterns().len(),
        "airplane {} vs bike {}",
        airplane.patterns().len(),
        bike.patterns().len()
    );
}

#[test]
fn hit_rate_tracks_pattern_strength() {
    let traj_bike = paper_dataset(PaperDataset::Bike, 7).generate_subs(80);
    let traj_air = paper_dataset(PaperDataset::Airplane, 7).generate_subs(80);
    let mk = |traj: &hybrid_prediction_model::trajectory::Trajectory| {
        let train = training_slice(traj, PERIOD, 60);
        let p = HybridPredictor::build(&train, &discovery(), &mining(), HpmConfig::default());
        let queries = make_workload(
            traj,
            PERIOD,
            &WorkloadParams {
                train_subs: 60,
                recent_len: 10,
                prediction_length: 50,
                num_queries: 30,
            },
        );
        pattern_hit_rate(&p, &queries)
    };
    let bike = mk(&traj_bike);
    let air = mk(&traj_air);
    assert!(
        bike >= air,
        "bike hit rate {bike} should be >= airplane {air}"
    );
    assert!(bike > 0.5, "bike hit rate too low: {bike}");
}
