//! Observability integration tests: a full predict over an in-tree
//! fixture must emit the documented span tree and dispatch counters,
//! and stay within the hot-path span budget (the regression guard for
//! "someone added a span per candidate").

use hybrid_prediction_model::core::{
    metrics as core_metrics, HpmConfig, HybridPredictor, PredictiveQuery,
};
use hybrid_prediction_model::geo::Point;
use hybrid_prediction_model::obs;
use hybrid_prediction_model::patterns::{DiscoveryParams, MiningParams};
use hybrid_prediction_model::trajectory::Trajectory;
use std::sync::{Mutex, MutexGuard};

/// Tests toggle the process-wide obs flag; serialize them.
static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// 40 days of a period-3 commute (home → road → work) with jitter —
/// the same shape as the crate-level doctest, small enough to build in
/// milliseconds but dense enough to mine patterns from.
fn commuter() -> HybridPredictor {
    let mut pts = Vec::new();
    for day in 0..40 {
        let j = (day % 3) as f64 * 0.1;
        pts.push(Point::new(j, 0.0));
        pts.push(Point::new(50.0 + j, 0.0));
        pts.push(Point::new(100.0 + j, 0.0));
    }
    HybridPredictor::build(
        &Trajectory::from_points(pts),
        &DiscoveryParams {
            period: 3,
            eps: 2.0,
            min_pts: 3,
        },
        &MiningParams {
            min_support: 4,
            min_confidence: 0.3,
            max_premise_len: 2,
            max_premise_gap: 2,
            max_span: 2,
        },
        HpmConfig {
            match_margin: 2.0,
            ..HpmConfig::default()
        },
    )
}

fn near_query(recent: &[Point]) -> PredictiveQuery<'_> {
    PredictiveQuery {
        recent,
        current_time: 120,
        query_time: 122,
    }
}

#[test]
fn predict_emits_expected_span_tree_and_dispatch_counter() {
    let _guard = serial();
    let predictor = commuter();
    core_metrics::register();
    obs::enable();
    let fqp_before = obs::snapshot().counter(core_metrics::FQP_DISPATCH).unwrap();
    let recent = [Point::new(0.0, 0.0)];
    let (prediction, roots) = obs::capture(|| predictor.predict(&near_query(&recent)));
    obs::disable();

    assert!(prediction.from_patterns());

    // The span tree mirrors the call structure: predict wraps the FQP
    // stage, which searches the TPT and then ranks candidates.
    assert_eq!(roots.len(), 1, "roots: {roots:?}");
    let predict = &roots[0];
    assert_eq!(predict.name, core_metrics::PREDICT_SPAN);
    let fqp = predict
        .find(core_metrics::FQP_SPAN)
        .expect("near query runs FQP");
    assert!(fqp.find("tpt.search").is_some(), "FQP searches the TPT");
    assert!(fqp.find(core_metrics::RANK_SPAN).is_some(), "FQP ranks");
    assert!(predict.find(core_metrics::BQP_SPAN).is_none());

    // Exactly one near query dispatched to the FQP arm.
    let snap = obs::snapshot();
    assert_eq!(
        snap.counter(core_metrics::FQP_DISPATCH).unwrap() - fqp_before,
        1
    );
    // The TPT search counters moved with it.
    assert!(snap.counter("tpt.search.nodes_visited").unwrap() > 0);
    // Every span fed its latency histogram (unit ns, nonzero samples).
    for span in [
        core_metrics::PREDICT_SPAN,
        core_metrics::FQP_SPAN,
        "tpt.search",
    ] {
        let h = snap
            .histogram(span)
            .unwrap_or_else(|| panic!("{span} missing"));
        assert_eq!(h.unit, obs::Unit::Nanos);
        assert!(h.count > 0, "{span} has no samples");
    }
}

#[test]
fn span_budget_stays_flat() {
    let _guard = serial();
    let predictor = commuter();
    obs::enable();
    let recent = [Point::new(0.0, 0.0)];
    let (_, roots) = obs::capture(|| predictor.predict(&near_query(&recent)));
    obs::disable();
    let total: usize = roots.iter().map(|r| r.span_count()).sum();
    // One predict currently opens 4 spans (predict, fqp, tpt.search,
    // rank). The budget leaves room for one more stage; per-candidate
    // or per-node spans would blow straight past it.
    assert!(total >= 4, "span tree unexpectedly shallow: {roots:?}");
    assert!(
        total <= 6,
        "hot-path span budget exceeded ({total}): {roots:?}"
    );
}

#[test]
fn fallback_path_counts_rmf() {
    let _guard = serial();
    let predictor = commuter();
    core_metrics::register();
    obs::enable();
    let rmf_before = obs::snapshot().counter(core_metrics::RMF_FALLBACK).unwrap();
    // Recent movements far outside every frequent region: no premise,
    // FQP declines, the motion function answers.
    let recent = [Point::new(900.0, 900.0), Point::new(905.0, 900.0)];
    let prediction = predictor.predict(&near_query(&recent));
    obs::disable();
    assert!(!prediction.from_patterns());
    let snap = obs::snapshot();
    assert_eq!(
        snap.counter(core_metrics::RMF_FALLBACK).unwrap() - rmf_before,
        1
    );
}

#[test]
fn disabled_mode_captures_nothing() {
    let _guard = serial();
    let predictor = commuter();
    obs::disable();
    let recent = [Point::new(0.0, 0.0)];
    let (prediction, roots) = obs::capture(|| predictor.predict(&near_query(&recent)));
    assert!(prediction.from_patterns(), "prediction itself unaffected");
    assert!(roots.is_empty(), "disabled mode must not record spans");
}
