//! Integration: the train → persist → restore → query cycle produces
//! byte-identical predictions.

use hybrid_prediction_model::core::eval::{make_workload, training_slice, WorkloadParams};
use hybrid_prediction_model::core::{HpmConfig, HybridPredictor};
use hybrid_prediction_model::datagen::{paper_dataset, PaperDataset, PERIOD};
use hybrid_prediction_model::patterns::{discover, mine, DiscoveryParams, MiningParams};
use hybrid_prediction_model::store::{decode_model, encode_model};

#[test]
fn restored_model_predicts_identically() {
    let traj = paper_dataset(PaperDataset::Cow, 31).generate_subs(50);
    let train = training_slice(&traj, PERIOD, 40);
    let discovery = DiscoveryParams {
        period: PERIOD,
        eps: 30.0,
        min_pts: 4,
    };
    let mining = MiningParams {
        min_support: 4,
        min_confidence: 0.3,
        max_premise_len: 2,
        max_premise_gap: 8,
        max_span: 64,
    };
    let out = discover(&train, &discovery);
    let patterns = mine(&out.regions, &out.visits, &mining);
    assert!(!patterns.is_empty());

    let blob = encode_model(&out.regions, &patterns);
    let restored = decode_model(&blob).expect("valid blob");

    let original = HybridPredictor::from_parts(out.regions, patterns, HpmConfig::default());
    let reloaded =
        HybridPredictor::from_parts(restored.regions, restored.patterns, HpmConfig::default());

    let queries = make_workload(
        &traj,
        PERIOD,
        &WorkloadParams {
            train_subs: 40,
            recent_len: 20,
            prediction_length: 50,
            num_queries: 25,
        },
    );
    for q in &queries {
        let a = original.predict(&q.as_query());
        let b = reloaded.predict(&q.as_query());
        assert_eq!(a, b, "prediction diverged after persistence");
    }
}

#[test]
fn blob_size_is_compact() {
    // The codec should spend far less than the naive 16-byte-per-id
    // layout: regions dominate (~56 bytes each), patterns a handful of
    // bytes each thanks to varints + delta coding.
    let traj = paper_dataset(PaperDataset::Airplane, 8).generate_subs(40);
    let out = discover(
        &traj,
        &DiscoveryParams {
            period: PERIOD,
            eps: 30.0,
            min_pts: 4,
        },
    );
    let patterns = mine(
        &out.regions,
        &out.visits,
        &MiningParams {
            min_support: 4,
            min_confidence: 0.3,
            max_premise_len: 2,
            max_premise_gap: 8,
            max_span: 64,
        },
    );
    let blob = encode_model(&out.regions, &patterns);
    let per_pattern =
        (blob.len() as f64 - out.regions.len() as f64 * 56.0) / patterns.len().max(1) as f64;
    assert!(
        per_pattern < 20.0,
        "{} bytes for {} patterns ({per_pattern:.1} B/pattern)",
        blob.len(),
        patterns.len()
    );
}

#[test]
fn empty_pattern_model_round_trips() {
    // A trained-but-patternless model (regions exist, mining found no
    // rules) is a legal state: it must persist and restore, and the
    // restored predictor must answer exactly like the original (pure
    // motion-function fallback).
    let traj = paper_dataset(PaperDataset::Cow, 17).generate_subs(20);
    let train = training_slice(&traj, PERIOD, 12);
    let out = discover(
        &train,
        &DiscoveryParams {
            period: PERIOD,
            eps: 30.0,
            min_pts: 4,
        },
    );
    // Impossible support floor: mining legitimately yields nothing.
    let patterns = mine(
        &out.regions,
        &out.visits,
        &MiningParams {
            min_support: u32::MAX,
            min_confidence: 0.99,
            max_premise_len: 2,
            max_premise_gap: 8,
            max_span: 64,
        },
    );
    assert!(patterns.is_empty());

    let blob = encode_model(&out.regions, &patterns);
    let restored = decode_model(&blob).expect("empty-pattern blob must decode");
    assert!(restored.patterns.is_empty());
    assert_eq!(restored.regions.all(), out.regions.all());

    let original = HybridPredictor::from_parts(out.regions, patterns, HpmConfig::default());
    let reloaded =
        HybridPredictor::from_parts(restored.regions, restored.patterns, HpmConfig::default());
    let queries = make_workload(
        &traj,
        PERIOD,
        &WorkloadParams {
            train_subs: 12,
            recent_len: 10,
            prediction_length: 30,
            num_queries: 10,
        },
    );
    for q in &queries {
        assert_eq!(
            original.predict(&q.as_query()),
            reloaded.predict(&q.as_query()),
            "patternless prediction diverged after persistence"
        );
    }
}

#[test]
fn untrained_objects_survive_a_snapshot_file_on_disk() {
    // The store-level cycle through an actual snapshot file: trained
    // and untrained objects alike must come back exactly — including
    // an object with less than one full period of history.
    use hybrid_prediction_model::geo::Point;
    use hybrid_prediction_model::objectstore::{
        DurabilityConfig, MovingObjectStore, ObjectId, StoreConfig,
    };
    use hybrid_prediction_model::patterns::{DiscoveryParams, MiningParams};

    let config = StoreConfig {
        discovery: DiscoveryParams {
            period: 4,
            eps: 2.0,
            min_pts: 3,
        },
        mining: MiningParams {
            min_support: 2,
            min_confidence: 0.3,
            max_premise_len: 2,
            max_premise_gap: 2,
            max_span: 3,
        },
        hpm: HpmConfig {
            k: 2,
            distant_threshold: 3,
            time_relaxation: 1,
            match_margin: 5.0,
            rmf_retrospect: 2,
            ..HpmConfig::default()
        },
        min_train_subs: 3,
        retrain_every_subs: 1,
        recent_len: 2,
        shards: 2,
        threads: 1,
        index: hpm_objectstore::IndexConfig::default(),
    };
    let dir = std::env::temp_dir().join(format!("hpm-persist-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let store = MovingObjectStore::open(config.clone(), DurabilityConfig::new(&dir)).unwrap();
    // Object 1: trained (4 full periods of a commuter loop).
    for d in 0..4u64 {
        for t in 0..4u64 {
            store
                .report(ObjectId(1), d * 4 + t, Point::new(t as f64 * 40.0, 0.0))
                .unwrap();
        }
    }
    // Object 2: untrained, sub-period history (2 samples).
    store
        .report(ObjectId(2), 100, Point::new(1.0, 2.0))
        .unwrap();
    store
        .report(ObjectId(2), 101, Point::new(3.0, 4.0))
        .unwrap();
    let trained = store.stats(ObjectId(1)).unwrap();
    assert!(trained.trained_periods > 0);
    let untrained = store.stats(ObjectId(2)).unwrap();
    assert_eq!(untrained.trained_periods, 0);

    // Cut a snapshot, then reopen from ONLY the snapshot (the WAL is
    // rotated into it, so fresh segments are empty).
    assert!(store.snapshot().unwrap());
    let p1 = store.predict(ObjectId(1), 20).unwrap();
    drop(store);

    let reopened = MovingObjectStore::open(config, DurabilityConfig::new(&dir)).unwrap();
    assert_eq!(reopened.object_count(), 2);
    // approx_bytes is capacity-based and may legitimately differ after
    // recovery; compare the logical fields.
    let logical = |mut s: hybrid_prediction_model::objectstore::ObjectStats| {
        s.approx_bytes = 0;
        s
    };
    assert_eq!(
        logical(reopened.stats(ObjectId(1)).unwrap()),
        logical(trained)
    );
    assert_eq!(
        logical(reopened.stats(ObjectId(2)).unwrap()),
        logical(untrained)
    );
    assert_eq!(reopened.predict(ObjectId(1), 20).unwrap(), p1);
    // The untrained object keeps accumulating where it left off.
    reopened
        .report(ObjectId(2), 102, Point::new(5.0, 6.0))
        .unwrap();
    assert_eq!(reopened.stats(ObjectId(2)).unwrap().samples, 3);
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}
