//! Integration: the train → persist → restore → query cycle produces
//! byte-identical predictions.

use hybrid_prediction_model::core::eval::{make_workload, training_slice, WorkloadParams};
use hybrid_prediction_model::core::{HpmConfig, HybridPredictor};
use hybrid_prediction_model::datagen::{paper_dataset, PaperDataset, PERIOD};
use hybrid_prediction_model::patterns::{discover, mine, DiscoveryParams, MiningParams};
use hybrid_prediction_model::store::{decode_model, encode_model};

#[test]
fn restored_model_predicts_identically() {
    let traj = paper_dataset(PaperDataset::Cow, 31).generate_subs(50);
    let train = training_slice(&traj, PERIOD, 40);
    let discovery = DiscoveryParams {
        period: PERIOD,
        eps: 30.0,
        min_pts: 4,
    };
    let mining = MiningParams {
        min_support: 4,
        min_confidence: 0.3,
        max_premise_len: 2,
        max_premise_gap: 8,
        max_span: 64,
    };
    let out = discover(&train, &discovery);
    let patterns = mine(&out.regions, &out.visits, &mining);
    assert!(!patterns.is_empty());

    let blob = encode_model(&out.regions, &patterns);
    let restored = decode_model(&blob).expect("valid blob");

    let original = HybridPredictor::from_parts(out.regions, patterns, HpmConfig::default());
    let reloaded =
        HybridPredictor::from_parts(restored.regions, restored.patterns, HpmConfig::default());

    let queries = make_workload(
        &traj,
        PERIOD,
        &WorkloadParams {
            train_subs: 40,
            recent_len: 20,
            prediction_length: 50,
            num_queries: 25,
        },
    );
    for q in &queries {
        let a = original.predict(&q.as_query());
        let b = reloaded.predict(&q.as_query());
        assert_eq!(a, b, "prediction diverged after persistence");
    }
}

#[test]
fn blob_size_is_compact() {
    // The codec should spend far less than the naive 16-byte-per-id
    // layout: regions dominate (~56 bytes each), patterns a handful of
    // bytes each thanks to varints + delta coding.
    let traj = paper_dataset(PaperDataset::Airplane, 8).generate_subs(40);
    let out = discover(
        &traj,
        &DiscoveryParams {
            period: PERIOD,
            eps: 30.0,
            min_pts: 4,
        },
    );
    let patterns = mine(
        &out.regions,
        &out.visits,
        &MiningParams {
            min_support: 4,
            min_confidence: 0.3,
            max_premise_len: 2,
            max_premise_gap: 8,
            max_span: 64,
        },
    );
    let blob = encode_model(&out.regions, &patterns);
    let per_pattern =
        (blob.len() as f64 - out.regions.len() as f64 * 56.0) / patterns.len().max(1) as f64;
    assert!(
        per_pattern < 20.0,
        "{} bytes for {} patterns ({per_pattern:.1} B/pattern)",
        blob.len(),
        patterns.len()
    );
}
