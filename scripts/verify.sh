#!/usr/bin/env bash
# Tier-1 verification, run fully offline to prove the build is hermetic.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline (tier-1: root package)"
cargo test -q --offline

echo "==> cargo test -q --offline --workspace (all crates)"
cargo test -q --offline --workspace

echo "==> hermetic manifest scan"
if grep -En '^(proptest|rand|criterion|serde|bytes|crossbeam|parking_lot)' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "ERROR: registry dependency declared in a manifest" >&2
    exit 1
fi

echo "OK: offline build + tests green, no registry dependencies"
