#!/usr/bin/env bash
# Tier-1 verification, run fully offline to prove the build is hermetic.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

echo "==> cargo clippy --workspace --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test -q --offline (tier-1: root package)"
cargo test -q --offline

echo "==> cargo test -q --offline --workspace (all crates)"
cargo test -q --offline --workspace

echo "==> concurrency stress + equivalence props, optimized (release)"
# Timing-sensitive paths (shard locking, pool fan-out) get exercised at
# full speed. HPM_STRESS_RUNS=N loops them; the acceptance bar of 100
# consecutive green runs is HPM_STRESS_RUNS=100 (see CONTRIBUTING.md).
STRESS_RUNS="${HPM_STRESS_RUNS:-1}"
for i in $(seq 1 "$STRESS_RUNS"); do
    [ "$STRESS_RUNS" -gt 1 ] && echo "  stress run $i/$STRESS_RUNS"
    cargo test -q --release --offline -p hpm-objectstore \
        --test stress --test props --test index_props --test prob_props \
        --test query_edge --test retrain --test recovery --test failpoints
    cargo test -q --release --offline -p hpm-server \
        --test proto_props --test faults
done

echo "==> metrics-json smoke (hpm predict --metrics-json + obs-json-check)"
cargo build --release --offline -p hpm-cli -p hpm-obs
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/hpm generate --dataset bike --subs 45 --seed 3 \
    --output "$SMOKE_DIR/bike.csv" >/dev/null
./target/release/hpm train --input "$SMOKE_DIR/bike.csv" --period 300 \
    --output "$SMOKE_DIR/bike.hpm" >/dev/null
./target/release/hpm predict --model "$SMOKE_DIR/bike.hpm" \
    --input "$SMOKE_DIR/bike.csv" --at 13540 \
    --metrics-json "$SMOKE_DIR/metrics.json" >/dev/null
./target/release/obs-json-check "$SMOKE_DIR/metrics.json" \
    counter:core.predict.calls \
    any-counter:core.predict.fqp_dispatch,core.predict.bqp_dispatch \
    counter:store.model.bytes_read \
    histogram:core.predict \
    histogram:store.model.decode

echo "==> CLI batch-predict smoke (--batch --threads 4)"
printf '# smoke queries\n13540\n13600\n13700\n' > "$SMOKE_DIR/times.txt"
# Capture first, grep the file after: grep -q on the live pipe exits at
# the first match and the resulting EPIPE kills the producer mid-print.
./target/release/hpm predict --model "$SMOKE_DIR/bike.hpm" \
    --input "$SMOKE_DIR/bike.csv" --batch "$SMOKE_DIR/times.txt" \
    --threads 4 > "$SMOKE_DIR/batch4.out"
grep -q "3 batch queries on 4 threads" "$SMOKE_DIR/batch4.out"
./target/release/hpm predict --model "$SMOKE_DIR/bike.hpm" \
    --input "$SMOKE_DIR/bike.csv" --batch "$SMOKE_DIR/times.txt" \
    --threads 1 > "$SMOKE_DIR/batch1.out"
# Parallel answers must be byte-identical to sequential ones.
diff <(sed 's/on 4 threads/on N threads/' "$SMOKE_DIR/batch4.out") \
     <(sed 's/on 1 threads/on N threads/' "$SMOKE_DIR/batch1.out")

echo "==> calibration smoke (noisy-sensor: claimed mass vs empirical hit rate)"
# The fallback-dominated noisy-sensor scenario is where the residual
# ellipse is the only source of claimed mass; generation is seed-
# deterministic, so the gap is a fixed value (~0.03) well under the
# 0.1 tolerance. A miscalibrated ellipse (wrong sigma scaling, broken
# erf) trips the non-zero exit.
./target/release/hpm generate --dataset noisy-sensor --subs 40 --seed 42 \
    --output "$SMOKE_DIR/noisy.csv" >/dev/null
./target/release/hpm eval --input "$SMOKE_DIR/noisy.csv" --period 300 \
    --train-subs 30 --length 5 --queries 50 \
    --calibration true --tolerance 0.1 > "$SMOKE_DIR/calib.out"
grep -q '^CALIBRATION predicted_mass=' "$SMOKE_DIR/calib.out"

echo "==> crash-recovery smoke (HPM_FAILPOINT tears the WAL mid-write)"
# A twin ingests the same stream without crashing; a crashed ingest is
# torn at a byte offset that varies per stress run, resumed, and must
# answer byte-for-byte like the twin. Loops with HPM_STRESS_RUNS.
./target/release/hpm generate --dataset bike --subs 10 --seed 7 \
    --output "$SMOKE_DIR/crash.csv" >/dev/null
INGEST_FLAGS="--period 300 --eps 30 --min-pts 4 --fsync never"
PREDICT_AT="3050,3100,3299"
./target/release/hpm ingest --input "$SMOKE_DIR/crash.csv" \
    --data-dir "$SMOKE_DIR/twin" $INGEST_FLAGS --predict-at "$PREDICT_AT" \
    | grep -E '^(PREDICT|STATS)' > "$SMOKE_DIR/twin.out"
for i in $(seq 1 "$STRESS_RUNS"); do
    [ "$STRESS_RUNS" -gt 1 ] && echo "  crash run $i/$STRESS_RUNS"
    rm -rf "$SMOKE_DIR/crashed"
    tear=$((512 + (i * 971) % 65536))
    set +e
    HPM_FAILPOINT="wal.append=torn@$tear" ./target/release/hpm ingest \
        --input "$SMOKE_DIR/crash.csv" --data-dir "$SMOKE_DIR/crashed" \
        $INGEST_FLAGS >/dev/null 2>&1
    rc=$?
    set -e
    if [ "$rc" -ne 86 ]; then
        echo "ERROR: failpoint ingest should die with exit 86, got $rc" >&2
        exit 1
    fi
    ./target/release/hpm ingest --input "$SMOKE_DIR/crash.csv" \
        --data-dir "$SMOKE_DIR/crashed" $INGEST_FLAGS --predict-at "$PREDICT_AT" \
        | grep -E '^(PREDICT|STATS)' > "$SMOKE_DIR/crashed.out"
    # Recovery must be invisible in the answers.
    diff "$SMOKE_DIR/twin.out" "$SMOKE_DIR/crashed.out"
done

echo "==> server smoke (hpm serve + loadgen round-trip over loopback)"
cargo build --release --offline -p hpm-bench
./target/release/hpm serve --addr 127.0.0.1:0 --period 60 \
    > "$SMOKE_DIR/serve.out" &
SERVE_PID=$!
# serve prints `LISTENING HOST:PORT` once bound; with port 0 the
# kernel picks, so parse the line instead of assuming.
for _ in $(seq 1 100); do
    grep -q '^LISTENING ' "$SMOKE_DIR/serve.out" 2>/dev/null && break
    sleep 0.1
done
ADDR="$(sed -n 's/^LISTENING //p' "$SMOKE_DIR/serve.out")"
if [ -z "$ADDR" ]; then
    echo "ERROR: hpm serve never printed LISTENING" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
./target/release/loadgen --addr "$ADDR" > "$SMOKE_DIR/loadgen.out"
grep -q '^LOADGEN ok' "$SMOKE_DIR/loadgen.out"
# The server-side memory gauges travel the wire: loadgen records a
# non-zero store.mem.bytes pulled via the Metrics verb.
grep -Eq 'store_mem_bytes=[1-9]' "$SMOKE_DIR/loadgen.out"
# `hpm stats` reads one object's stats (with approx resident bytes) and
# the fleet gauges, then sends the Shutdown verb so `wait` below proves
# a clean shutdown.
./target/release/hpm stats --addr "$ADDR" --id 1 --shutdown true \
    > "$SMOKE_DIR/stats.out"
grep -q '^STATS samples=' "$SMOKE_DIR/stats.out"
grep -Eq '^MEM approx_bytes=[1-9]' "$SMOKE_DIR/stats.out"
grep -Eq '^MEM store_bytes=[1-9]' "$SMOKE_DIR/stats.out"
wait "$SERVE_PID"
grep -q '^SHUTDOWN clean' "$SMOKE_DIR/serve.out"

echo "==> memory smoke (10k-object store under the committed bytes/object budget)"
cargo bench --offline -q -p hpm-bench --bench memory -- --memsmoke \
    > "$SMOKE_DIR/memsmoke.out"
grep -q '^MEMSMOKE ok' "$SMOKE_DIR/memsmoke.out"

echo "==> hermetic manifest scan"
if grep -En '^(proptest|rand|criterion|serde|bytes|crossbeam|parking_lot)' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "ERROR: registry dependency declared in a manifest" >&2
    exit 1
fi

echo "OK: offline build + tests green, no registry dependencies"
