#!/usr/bin/env bash
# Tier-1 verification, run fully offline to prove the build is hermetic.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline (tier-1: root package)"
cargo test -q --offline

echo "==> cargo test -q --offline --workspace (all crates)"
cargo test -q --offline --workspace

echo "==> metrics-json smoke (hpm predict --metrics-json + obs-json-check)"
cargo build --release --offline -p hpm-cli -p hpm-obs
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/hpm generate --dataset bike --subs 45 --seed 3 \
    --output "$SMOKE_DIR/bike.csv" >/dev/null
./target/release/hpm train --input "$SMOKE_DIR/bike.csv" --period 300 \
    --output "$SMOKE_DIR/bike.hpm" >/dev/null
./target/release/hpm predict --model "$SMOKE_DIR/bike.hpm" \
    --input "$SMOKE_DIR/bike.csv" --at 13540 \
    --metrics-json "$SMOKE_DIR/metrics.json" >/dev/null
./target/release/obs-json-check "$SMOKE_DIR/metrics.json" \
    counter:core.predict.calls \
    any-counter:core.predict.fqp_dispatch,core.predict.bqp_dispatch \
    counter:store.model.bytes_read \
    histogram:core.predict \
    histogram:store.model.decode

echo "==> hermetic manifest scan"
if grep -En '^(proptest|rand|criterion|serde|bytes|crossbeam|parking_lot)' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "ERROR: registry dependency declared in a manifest" >&2
    exit 1
fi

echo "OK: offline build + tests green, no registry dependencies"
